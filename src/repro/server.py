"""`repro serve` — a long-lived serving daemon with HTTP observability.

Everything before this module runs and exits: the bench replays a
stream once, writes ``BENCH_serve.json``, and the telemetry it gathered
is only inspectable after the fact.  :class:`ServeDaemon` turns the same
machinery (:func:`~repro.bench.serve.build_world` /
:func:`~repro.bench.serve.drive_operation`) into a *service*, in one of
two serving cores sharing the same lock discipline:

* **threaded** (default): ``clients`` threads replay the seeded
  operation stream in a loop over the shared
  :class:`~repro.concurrency.ContextPool`, each blocking in the
  :class:`~repro.device.DeviceModel` for its simulated I/O — in-flight
  operations are capped at ``clients``.
* **async** (``--async``, DESIGN §12): one asyncio event loop runs an
  *admission loop* feeding a bounded queue (capacity ``--max-inflight``)
  drained by up to ``max_inflight`` concurrent operations.  Each
  operation offloads its CPU-bound core
  (:func:`~repro.bench.serve.execute_operation`, locks and pool
  accounting on real executor threads) to a bounded
  ``ThreadPoolExecutor`` of ``clients`` threads, then *awaits* its
  device charge on the loop.  When the admission queue is full the
  arrival is **shed** — counted in ``admission.rejected`` — instead of
  queueing unboundedly; ``queue.depth``, ``queue.wait_ms``, and
  ``inflight`` expose the loop's state to every scrape.

A stdlib :class:`~http.server.ThreadingHTTPServer` exposes the live
registry either way:

``GET /metrics``
    The Prometheus text exposition of the live
    :class:`~repro.telemetry.registry.MetricsRegistry` — scrape it.
``GET /healthz``
    The accounting invariant (shared totals == retired + Σ live
    per-worker totals), quarantine state of every managed ASR, and a
    hit-rate sanity check, as JSON.  Any violation turns the response
    into a 503, so a liveness probe catches torn accounting the moment
    it happens instead of at bench exit.
``GET /stats``
    The ``repro stats`` JSON payload (metrics snapshot + drift report +
    accounting), computed fresh per request.
``POST /query``
    The query front door: a JSON body ``{"query": "select …"}`` runs
    parse → schema validation → cost-based planning → execution over
    the shared pool and returns rows, the chosen strategy, and the
    page-access cost.  Compiled plans are cached per ``(normalized
    text, ASR epoch)`` (:mod:`repro.query.cache`), so hot texts skip
    planning until maintenance or recovery bumps the epoch.  Parse and
    validation failures return a structured 400
    (``{"error": {"kind": …, "message": …}}``).
``GET /advisor``
    The adaptive-design loop's state (DESIGN §15): sweeps, applied and
    rejected retunes (by reason), the current (extension,
    decomposition), the last decision with its predicted gain, and the
    recent retune history.  ``{"enabled": false}`` when the daemon runs
    without ``--advisor-interval``.
``GET /trace/recent`` / ``GET /trace/<id>``
    The retained request traces (DESIGN §14): with tracing enabled
    (``--trace-sample-rate`` / ``--slow-trace-ms``) every front-door
    request — ``POST /query`` and each replayed operation on either
    core — carries a trace whose ``queue`` / ``lock.read`` /
    ``lock.write`` / ``plan`` / ``cache-hit`` / ``execute`` /
    ``device`` / ``serialize`` phases sum to its end-to-end latency.
    ``/trace/recent`` lists summaries newest-first; ``/trace/<id>``
    returns one full span tree (404 once evicted or never retained).

Every HTTP request, scrape included, also self-reports:
``http.requests{endpoint}`` counts and ``http.latency_ms{endpoint}``
times ``/metrics``, ``/healthz``, ``/stats``, ``/query``, and the
``/trace/*`` family (``/trace/:id`` is one label).

A background publisher re-snapshots the
:class:`~repro.telemetry.drift.DriftMonitor` (and the accounting gauges)
every ``drift_interval`` seconds, so the predicted-vs-observed ratios a
scrape sees are at most one interval old rather than frozen at startup.

Health checks and the publisher compute accounting under the manager's
*write* lock — the only quiescent point for the shared-vs-Σ-workers
comparison while clients are mid-flight.  That is exactly the writer
that the :class:`~repro.concurrency.RWLock` starvation fix protects: a
saturating read stream can no longer park ``/healthz`` forever.

The daemon carries the self-healing resilience layer of DESIGN §13
(:mod:`repro.resilience`): a background :class:`HealerLoop` recovers
quarantined ASRs under the shared :class:`RecoveryPolicy`, an optional
:class:`ChaosController` (``--chaos-rate``) strikes the fault injector
from the live op stream so that healing is continuously exercised,
per-ASR circuit breakers route queries to the degraded GOM-traversal
fallback while a relation keeps faulting, and ``--op-deadline-ms``
sheds queue entries whose deadline expired before execution.
``/healthz`` stays 200 while the healer is actively retrying a
quarantined ASR and degrades to 503 only when it gave up (or is absent).

SIGINT/SIGTERM (or :meth:`ServeDaemon.shutdown`) trigger a graceful
drain: disarm chaos, stop admitting operations, quiesce the serving
core (join the client threads, or let the admission loop stop and the
queued operations finish before the event loop and executor wind down),
run the healer's final forced sweep, flush the ASR manager's batched
maintenance queues, retire every pool context, and write a final
``BENCH_serve.json``-shaped report — ``repro stats`` renders it like
any bench report, and its ``resilience`` section records healer MTTR,
chaos strikes, breaker transitions, and the end-state quarantine set.
"""

from __future__ import annotations

import asyncio
import json
import random
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.asr.journal import ASRState
from repro.bench.serve import (
    ExecutorWorkers,
    OpSample,
    ServeConfig,
    ServeWorld,
    build_world,
    drive_operation,
    drive_operation_async,
    per_operation,
    write_report,
)
from repro.errors import (
    InjectedFault,
    ParseError,
    QueryError,
    RecoveryError,
    SimulatedCrash,
)
from repro.faults import FaultInjector
from repro.query.evaluator import QueryEvaluator
from repro.query.planner import Planner
from repro.asr.adaptive import AdaptiveDesigner
from repro.resilience import (
    AdvisorLoop,
    ChaosConfig,
    ChaosController,
    HealerLoop,
    RecoveryPolicy,
)
from repro.telemetry.tracing import activate
from repro.workload.opstream import Operation

__all__ = ["ServerConfig", "ServeDaemon"]


@dataclass
class ServerConfig:
    """Knobs of one daemon (all reachable from ``repro serve``)."""

    #: The replayed workload and world shape (stream length ``ops`` is
    #: the *period* of the replay loop, not a total).
    serve: ServeConfig = field(default_factory=ServeConfig)
    host: str = "127.0.0.1"
    #: TCP port for the endpoint; 0 binds an ephemeral one.
    port: int = 8000
    #: Seconds between drift/accounting re-publications.
    drift_interval: float = 5.0
    #: Where the final drain report is written.  Deliberately *not*
    #: ``BENCH_serve.json``: that path is the committed bench-serve
    #: baseline CI compares against, and a daemon drain must never
    #: overwrite it.
    out: str = "BENCH_serve_daemon.json"
    #: Optional file the daemon writes ``host:port`` into once bound —
    #: how tests and the CI smoke job discover an ephemeral port.
    addr_file: str | None = None
    #: Newest operation samples kept for the final latency table (the
    #: registry histograms cover *every* operation regardless).
    max_samples: int = 10_000
    #: The retry/backoff contract applied to the world's ASR manager
    #: and the healer (see :mod:`repro.resilience.policy`).
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: Run a background :class:`~repro.resilience.healer.HealerLoop`
    #: that recovers quarantined ASRs without an operator.
    healer: bool = True
    #: Seconds between healer sweeps of the quarantine set.
    healer_interval: float = 0.25
    #: Live chaos injection regime (``None`` or rate 0 disables).  When
    #: enabled the manager's ``auto_recover`` is turned off so the
    #: healer — not the flush path — owns every recovery.
    chaos: ChaosConfig | None = None
    #: Seconds between :class:`~repro.resilience.advisor.AdvisorLoop`
    #: sweeps re-costing the chain ASR's (extension, decomposition)
    #: against the measured op mix; 0 disables the loop entirely.
    advisor_interval: float = 0.0
    #: Hysteresis: predicted gain (current cost / best cost) a candidate
    #: design must clear before a retune is applied.
    advisor_threshold: float = 1.2
    #: Seconds between applied retunes (``None`` = two sweep intervals).
    advisor_cooldown: float | None = None
    #: Recorded operations required before a sweep's mix is trusted.
    advisor_min_ops: int = 32
    #: Decide-but-don't-act mode: the loop records what it *would* have
    #: retuned (``GET /advisor``) without touching the physical design.
    advisor_dry_run: bool = False
    #: Scale the current design's cost by the drift monitor's
    #: observed/predicted ratio before the hysteresis gate.  Off by
    #: default: on a cached pool the observed side under-runs the model
    #: for *every* design, so one-sided calibration suppresses retunes
    #: the candidate would have earned just as much.
    advisor_drift_calibration: bool = False


class ServeDaemon:
    """The long-lived serving process behind ``repro serve``.

    Lifecycle: :meth:`start` builds the world and launches the client,
    publisher, and HTTP threads; :meth:`shutdown` drains and writes the
    final report; :meth:`run` is the blocking CLI entry point that wires
    SIGINT/SIGTERM between the two.  Tests drive start/shutdown
    directly.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.world: ServeWorld | None = None
        self._device = None
        self._stop = threading.Event()
        self._samples: deque[OpSample] = deque(maxlen=self.config.max_samples)
        self._samples_lock = threading.Lock()
        self._ops_served = 0
        self._op_index = 0
        self._index_lock = threading.Lock()
        self._stream: list[Operation] = []
        self._clients: list[threading.Thread] = []
        self._publisher: threading.Thread | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._errors: list[BaseException] = []
        self._report: dict | None = None
        # --- async serving core state (``--async`` mode only) ---
        self._workers: ExecutorWorkers | None = None
        self._loop_thread: threading.Thread | None = None
        #: Operations currently executing on the loop (mutated only from
        #: the loop thread; read by gauge scrapes — a plain int is safe).
        self._inflight = 0
        self._queue: asyncio.Queue | None = None
        # --- resilience layer (DESIGN §13) ---
        self._healer: HealerLoop | None = None
        self._chaos: ChaosController | None = None
        # --- adaptive physical design (DESIGN §15) ---
        self._advisor: AdvisorLoop | None = None
        #: Consecutive admission sheds (mutated only on the loop thread;
        #: read by gauges).
        self._shed_streak = 0
        self._max_shed_streak = 0
        self._shed_rng = random.Random(self.config.serve.seed)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Build the world, bind the endpoint, launch the serving core."""
        config = self.config
        self.world = build_world(config.serve)
        self._device = config.serve.device(self.world.registry)
        self._stream = self.world.stream()
        self._wire_resilience()
        self._started_at = time.perf_counter()
        self.world.registry.gauge_fn(
            "serve.uptime_seconds",
            lambda: time.perf_counter() - self._started_at,
        )
        self.world.registry.gauge_fn(
            "serve.live_clients",
            lambda: sum(thread.is_alive() for thread in self._clients),
        )
        self._httpd = ThreadingHTTPServer(
            (config.host, config.port), _make_handler(self)
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._http_thread.start()
        if config.addr_file:
            host, port = self.address
            with open(config.addr_file, "w", encoding="utf-8") as handle:
                handle.write(f"{host}:{port}\n")
        if config.serve.use_async:
            self._start_async_core()
        else:
            self._clients = [
                threading.Thread(
                    target=self._client_loop,
                    args=(k,),
                    name=f"serve-client-{k}",
                    daemon=True,
                )
                for k in range(config.serve.clients)
            ]
            for thread in self._clients:
                thread.start()
        self._publisher = threading.Thread(
            target=self._publisher_loop, name="serve-publisher", daemon=True
        )
        self._publisher.start()
        return self

    def _wire_resilience(self) -> None:
        """Apply the recovery policy; arm chaos; launch the healer."""
        config = self.config
        manager = self.world.manager
        registry = self.world.registry
        manager.policy = config.recovery
        if config.chaos is not None and config.chaos.enabled:
            # Chaos arms *named* maintenance/recovery points on a
            # dedicated injector — not page-level fault rates, which
            # would escape from arbitrary query evaluation and kill
            # client loops instead of quarantining ASRs.
            injector = FaultInjector(seed=config.chaos.seed)
            manager.fault_injector = injector
            # The healer, not the flush path, owns recovery under
            # chaos — otherwise every fault heals in-place before the
            # resilience layer ever sees it.
            manager.auto_recover = False
            self._chaos = ChaosController(injector, config.chaos, registry)
        if config.healer:
            self._healer = HealerLoop(
                manager,
                policy=config.recovery,
                interval=config.healer_interval,
                registry=registry,
                breakers=self.world.breakers,
                seed=config.serve.seed,
            ).start()
        if config.advisor_interval > 0:
            # The advisor manages the chain ASR — the one every profile
            # replays Q_{i,j} queries and ins_i updates against.  (The
            # "queries" profile's payload-path ASR stays as built: the
            # recorder has no per-range evidence for it.)
            chain_asr = manager.find(self.world.generated.path)[0]
            designer = AdaptiveDesigner(
                manager,
                chain_asr,
                self.world.recorder,
                improvement_threshold=config.advisor_threshold,
            )
            self._advisor = AdvisorLoop(
                designer,
                interval=config.advisor_interval,
                threshold=config.advisor_threshold,
                cooldown=config.advisor_cooldown,
                min_ops=config.advisor_min_ops,
                dry_run=config.advisor_dry_run,
                registry=registry,
                tracer=self.world.tracer,
                drift=(
                    self.world.drift
                    if config.advisor_drift_calibration
                    else None
                ),
            ).start()

    @property
    def healer(self) -> HealerLoop | None:
        return self._healer

    @property
    def chaos(self) -> ChaosController | None:
        return self._chaos

    @property
    def advisor(self) -> AdvisorLoop | None:
        return self._advisor

    def _start_async_core(self) -> None:
        """Launch the event-loop serving core (``--async`` mode)."""
        registry = self.world.registry
        registry.gauge_fn("inflight", lambda: self._inflight)
        registry.gauge_fn(
            "queue.depth",
            lambda: self._queue.qsize() if self._queue is not None else 0,
        )
        # Overload visibility: how long the current run of consecutive
        # sheds is, and the worst streak seen — a collapsing daemon
        # shows a growing streak, not just a rising reject counter.
        registry.gauge_fn("admission.shed_streak", lambda: self._shed_streak)
        registry.gauge_fn(
            "admission.max_shed_streak", lambda: self._max_shed_streak
        )
        self._workers = ExecutorWorkers(self.world, self.config.serve.clients)
        self._loop_thread = threading.Thread(
            target=self._async_loop_main, name="serve-loop", daemon=True
        )
        self._loop_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — resolves ``--port 0``."""
        if self._httpd is None:
            raise RuntimeError("daemon not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def ops_served(self) -> int:
        """Operations completed so far (all clients)."""
        with self._samples_lock:
            return self._ops_served

    def request_stop(self) -> None:
        """Stop admitting operations (signal handlers land here)."""
        self._stop.set()

    def shutdown(self) -> dict:
        """Graceful drain; returns (and writes) the final report.

        Drain order: disarm chaos (no new faults land past this point)
        → stop admitting ops → quiesce the serving core (threaded: join
        the client threads; async: the admission loop stops, every
        already-queued operation completes, the loop and executor wind
        down, and the executor threads' contexts retire) → stop the
        healer with one final forced sweep (chaos is gone, so every
        reachable recovery succeeds — rebuild fallback included) → join
        the publisher → flush the manager's batched maintenance queues →
        verify consistency (skipped, and recorded as a drain error, for
        any ASR still quarantined) → close the manager and retire every
        pool context → final drift publication and accounting check →
        write the report → stop the HTTP endpoint.  Idempotent.
        """
        if self._report is not None:
            return self._report
        if self._chaos is not None:
            self._chaos.stop()
        if self._advisor is not None:
            # Before the serving core quiesces: a retune started now
            # would hold the write lock against the drain's own flush.
            # stop() joins the sweep thread, so any in-flight retune
            # completes (or rolls back) before the drain proceeds.
            self._advisor.stop()
        self._stop.set()
        for thread in self._clients:
            thread.join()
        if self._loop_thread is not None:
            self._loop_thread.join()
        if self._workers is not None:
            self._workers.close()
        if self._healer is not None:
            self._healer.stop(final_sweep=True)
        if self._publisher is not None:
            self._publisher.join()
        world = self.world
        flushed_rows = world.manager.flush()
        end_quarantined = [str(asr.path) for asr in world.manager.quarantined]
        if end_quarantined:
            self._errors.append(
                RecoveryError(
                    f"drained with quarantined ASR(s): {end_quarantined}"
                )
            )
        else:
            world.manager.check_consistency()
        world.manager.close()
        world.pool.close()
        world.drift.publish(world.registry)
        accounting = world.pool.check_accounting(world.registry)
        uptime = time.perf_counter() - self._started_at
        with self._samples_lock:
            samples = list(self._samples)
            ops_served = self._ops_served
        host, port = self.address
        config = self.config
        self._report = {
            "benchmark": "serve",
            "mode": "daemon",
            "core": "async" if config.serve.use_async else "threaded",
            "config": {
                "clients": config.serve.clients,
                "ops": config.serve.ops,
                "seed": config.serve.seed,
                "capacity": config.serve.capacity,
                "io_micros": config.serve.io_micros,
                "io_dist": config.serve.io_dist,
                "async": config.serve.use_async,
                "max_inflight": config.serve.max_inflight,
                "query_fraction": config.serve.query_fraction,
                "profile": config.serve.profile,
                "max_spans": config.serve.max_spans,
                "op_deadline_ms": config.serve.op_deadline_ms,
                "shed_backoff_ms": config.serve.shed_backoff_ms,
                "query_cache_size": config.serve.query_cache_size,
                "trace_sample_rate": config.serve.trace_sample_rate,
                "slow_trace_ms": config.serve.slow_trace_ms,
                "trace_capacity": config.serve.trace_capacity,
                "host": host,
                "port": port,
                "drift_interval": config.drift_interval,
                "advisor_interval": config.advisor_interval,
                "advisor_threshold": config.advisor_threshold,
                "advisor_dry_run": config.advisor_dry_run,
            },
            "device": config.serve.latency_model().describe(),
            "admission_rejected": int(
                world.registry.counter_value("admission.rejected")
            ),
            "uptime_seconds": round(uptime, 3),
            "ops_served": ops_served,
            "throughput_ops_per_s": round(ops_served / uptime, 2) if uptime else 0.0,
            "operations": per_operation(samples),
            "sampled_operations": len(samples),
            "drained": {
                "flushed_rows": flushed_rows,
                "errors": [repr(error) for error in self._errors],
            },
            "pool": world.pool.describe(),
            "query_cache": world.queries.cache.describe(),
            "tracing": world.tracer.describe(),
            "accounting": accounting,
            "advisor": self._advisor.describe() if self._advisor else None,
            "resilience": {
                "healer": self._healer.describe() if self._healer else None,
                "chaos": self._chaos.describe() if self._chaos else None,
                "breakers": world.breakers.describe(),
                "deadline_shed": int(
                    world.registry.counter_value("deadline.shed")
                ),
                "chaos_casualties": int(
                    world.registry.counter_value("chaos.casualties")
                ),
                "admission": {
                    "rejected": int(
                        world.registry.counter_value("admission.rejected")
                    ),
                    "max_shed_streak": self._max_shed_streak,
                    "shed_backoff_ms": config.serve.shed_backoff_ms,
                },
                "end_state": {
                    "quarantined": end_quarantined,
                    "consistent": not end_quarantined,
                },
            },
            "metrics": world.registry.snapshot(),
            "drift": world.drift.report(),
        }
        write_report(self._report, self.config.out)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._http_thread.join()
        return self._report

    def run(self, out=None) -> int:
        """Serve until SIGINT/SIGTERM, then drain.  The CLI entry point."""
        out = out or sys.stdout
        self.start()
        host, port = self.address
        core = "async" if self.config.serve.use_async else "threaded"
        print(
            f"serving on http://{host}:{port} [{core} core]  "
            f"(GET /metrics /healthz /stats /trace/recent, POST /query; "
            f"drift republished "
            f"every {self.config.drift_interval:g}s; SIGTERM drains)",
            file=out,
            flush=True,
        )
        self._install_signal_handlers()
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:
            self._stop.set()
        report = self.shutdown()
        drained = report["drained"]
        print(
            f"drained after {report['uptime_seconds']:g}s: "
            f"{report['ops_served']} op(s) served "
            f"({report['throughput_ops_per_s']:g} ops/s), "
            f"{drained['flushed_rows']} maintenance row(s) flushed, "
            f"accounting "
            f"{'consistent' if report['accounting']['ok'] else 'INCONSISTENT'} "
            f"-> {self.config.out}",
            file=out,
            flush=True,
        )
        return 0 if report["accounting"]["ok"] and not drained["errors"] else 1

    def _install_signal_handlers(self) -> None:
        def handle(_signum, _frame) -> None:
            self.request_stop()

        try:
            signal.signal(signal.SIGINT, handle)
            signal.signal(signal.SIGTERM, handle)
        except ValueError:  # pragma: no cover - not on the main thread
            pass

    # ------------------------------------------------------------------
    # the replay loop
    # ------------------------------------------------------------------

    def _next_op(self) -> Operation | None:
        """The next operation of the cyclic replay, None once draining."""
        if self._stop.is_set():
            return None
        with self._index_lock:
            index = self._op_index
            self._op_index += 1
            stream = self._stream
        return stream[index % len(stream)]

    def set_stream(self, stream: list[Operation]) -> None:
        """Swap the replayed stream mid-run (the advisor soak's mix shift).

        Clients pick up the new stream on their next ``_next_op``; an
        operation already mid-flight finishes against the old mix, which
        is exactly the boundary a live workload shift has.
        """
        if not stream:
            raise ValueError("replacement stream must be non-empty")
        with self._index_lock:
            self._stream = list(stream)
            self._op_index = 0

    def _client_loop(self, k: int) -> None:
        world = self.world
        try:
            with world.pool.context() as context:
                planner = Planner(
                    world.manager, drift=world.drift, breakers=world.breakers
                )
                evaluator = QueryEvaluator(
                    world.generated.db, world.generated.store, context=context
                )
                while True:
                    op = self._next_op()
                    if op is None:
                        return
                    # The threaded core's "admission" instant: the gap to
                    # drive start (chaos hook included) is this core's
                    # queue wait, published for parity with the async
                    # queue's ``queue.wait_ms``.
                    admitted = time.perf_counter()
                    if self._chaos is not None:
                        self._chaos.on_operation(op)
                    try:
                        sample = drive_operation(
                            world,
                            context,
                            planner,
                            evaluator,
                            op,
                            self._device,
                            admitted_at=admitted,
                        )
                    except (InjectedFault, SimulatedCrash):
                        if self._chaos is None:
                            raise
                        # A chaos crash killed this operation mid-flight;
                        # the ASR is quarantined behind its journal and
                        # the healer will pick it up.  The "process"
                        # restarts: this client keeps serving.
                        world.registry.inc("chaos.casualties")
                        continue
                    self._record(sample, op)
        except BaseException as error:  # noqa: BLE001 - reported in the drain
            self._errors.append(error)
            self._stop.set()

    def _record(self, sample: OpSample, op: Operation) -> None:
        with self._samples_lock:
            self._samples.append(sample)
            self._ops_served += 1
        self.world.registry.inc("serve.ops", op=op.name, kind=op.kind)

    # ------------------------------------------------------------------
    # the async serving core (DESIGN §12)
    # ------------------------------------------------------------------

    def _async_loop_main(self) -> None:
        """Thread target: run the event loop until the drain completes."""
        try:
            asyncio.run(self._async_serve())
        except BaseException as error:  # noqa: BLE001 - reported in the drain
            self._errors.append(error)
            self._stop.set()

    async def _async_serve(self) -> None:
        """Admission loop + bounded worker tasks, until stop, then drain.

        The admission queue (capacity ``max_inflight``) is the overload
        boundary: a full queue sheds the arrival with a counted
        rejection instead of queueing unboundedly.  ``max_inflight``
        worker tasks drain it, each offloading the CPU-bound core to the
        bounded executor and awaiting the device charge on the loop.  On
        stop the admission loop exits first, every *already admitted*
        operation completes (``queue.join``), and only then are the idle
        workers cancelled — so a drain under a saturated queue loses no
        admitted work.
        """
        limit = max(1, self.config.serve.max_inflight)
        queue: asyncio.Queue = asyncio.Queue(maxsize=limit)
        self._queue = queue
        workers = [
            asyncio.create_task(self._async_worker(queue)) for _ in range(limit)
        ]
        try:
            await self._admission_loop(queue)
            await queue.join()
        finally:
            for task in workers:
                task.cancel()
            await asyncio.gather(*workers, return_exceptions=True)

    async def _admission_loop(self, queue: asyncio.Queue) -> None:
        """Admit replayed operations until stopped; shed when full.

        The post-shed backoff is ``--shed-backoff-ms`` with ±50% seeded
        jitter, so a saturated pump neither spins (zero backoff) nor
        beats in lockstep with the drain rate (fixed backoff).
        """
        registry = self.world.registry
        tracer = self.world.tracer
        backoff = max(0.0, self.config.serve.shed_backoff_ms) / 1e3
        while True:
            op = self._next_op()
            if op is None:
                return
            admitted = time.perf_counter()
            # The trace opens at admission, so queue wait is inside it
            # and an operation shed at the front door still leaves a
            # tail-captured "shed" trace behind.
            trace = tracer.begin(op.name, op.kind, started=admitted)
            try:
                queue.put_nowait((op, admitted, trace))
            except asyncio.QueueFull:
                tracer.finish(trace, "shed")
                registry.inc("admission.rejected")
                self._shed_streak += 1
                if self._shed_streak > self._max_shed_streak:
                    self._max_shed_streak = self._shed_streak
                await asyncio.sleep(
                    backoff * (0.5 + self._shed_rng.random()) if backoff else 0
                )
            else:
                self._shed_streak = 0
                # Yield so workers run between admissions; the replay is
                # a closed loop, so without this the pump would fill the
                # queue before any operation starts.
                await asyncio.sleep(0)

    async def _async_worker(self, queue: asyncio.Queue) -> None:
        """One in-flight operation slot: dequeue, execute, charge, record.

        With ``--op-deadline-ms`` set, an entry whose queue wait already
        exceeds the deadline is shed *unexecuted* (``deadline.shed``) —
        its caller has given up, so burning a worker slot on it only
        delays entries that can still make their deadline.  Deadline
        sheds are deliberately a separate counter from admission
        rejects: rejects measure pushback at the front door, deadline
        sheds measure staleness past it.
        """
        world = self.world
        deadline_ms = self.config.serve.op_deadline_ms
        while True:
            op, admitted, trace = await queue.get()
            try:
                wait_ms = (time.perf_counter() - admitted) * 1e3
                if deadline_ms is not None and wait_ms > deadline_ms:
                    world.registry.inc("deadline.shed")
                    world.tracer.finish(trace, "shed")
                    continue
                world.registry.observe("queue.wait_ms", wait_ms)
                if trace is not None:
                    trace.add_phase("queue", wait_ms)
                if self._chaos is not None:
                    self._chaos.on_operation(op)
                self._inflight += 1
                try:
                    sample = await drive_operation_async(
                        world, self._workers, op, self._device, trace=trace
                    )
                except (InjectedFault, SimulatedCrash):
                    if self._chaos is None:
                        raise
                    world.registry.inc("chaos.casualties")
                    continue
                finally:
                    self._inflight -= 1
                self._record(sample, op)
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # noqa: BLE001 - drain reports
                self._errors.append(error)
                self._stop.set()
            finally:
                queue.task_done()

    def _publisher_loop(self) -> None:
        interval = max(self.config.drift_interval, 0.05)
        while not self._stop.wait(interval):
            self.republish()

    def republish(self) -> None:
        """One drift + accounting re-publication (the scrape freshener)."""
        world = self.world
        with world.manager.exclusive():
            world.pool.check_accounting(world.registry)
        world.drift.publish(world.registry)
        world.registry.inc("serve.drift_republished")

    # ------------------------------------------------------------------
    # endpoint payloads
    # ------------------------------------------------------------------

    def health(self) -> tuple[bool, dict]:
        """The ``/healthz`` verdict and payload.

        Computed under the manager's write lock — the quiescent point at
        which the accounting comparison and the ASR states are exact.

        Quarantine degrades the verdict in two tiers: an ASR the healer
        is *actively retrying* keeps the response 200 (with the detail
        in ``healing``) — transient faults under chaos must not flap a
        liveness probe that would restart a self-healing process — while
        an ASR the healer has given up on (or no healer at all) is
        hard-down and turns the response 503.
        """
        world = self.world
        with world.manager.exclusive():
            accounting = world.pool.check_accounting(world.registry)
            asrs = [
                {
                    "path": str(asr.path),
                    "extension": asr.extension.value,
                    "state": asr.state.value,
                }
                for asr in world.manager.asrs
            ]
        hit_rate = world.pool.pool.hit_rate
        hit_rate_ok = 0.0 <= hit_rate <= 1.0
        quarantined = [
            entry["path"]
            for entry in asrs
            if entry["state"] != ASRState.CONSISTENT.value
        ]
        healer_info = self._healer.describe() if self._healer is not None else None
        healing, hard_down = [], []
        for path in quarantined:
            actively_retried = (
                healer_info is not None
                and healer_info["running"]
                and path not in healer_info["gave_up"]
            )
            (healing if actively_retried else hard_down).append(path)
        ok = bool(accounting["ok"]) and hit_rate_ok and not hard_down
        payload = {
            "ok": ok,
            "status": "draining" if self._stop.is_set() else "serving",
            "core": "async" if self.config.serve.use_async else "threaded",
            "uptime_seconds": round(time.perf_counter() - self._started_at, 3),
            "ops_served": self.ops_served,
            # Overload shedding is healthy behaviour, not a failure: the
            # admission counters are informational here.
            "inflight": self._inflight,
            "admission_rejected": int(
                world.registry.counter_value("admission.rejected")
            ),
            "accounting": accounting,
            "hit_rate": round(hit_rate, 4),
            "hit_rate_ok": hit_rate_ok,
            "quarantined": quarantined,
            "healing": healing,
            "quarantined_hard": hard_down,
            "healer": healer_info,
            "advisor": (
                self._advisor.describe() if self._advisor is not None else None
            ),
            "breakers": world.breakers.describe(),
            "chaos": self._chaos.describe() if self._chaos is not None else None,
            "deadline_shed": int(world.registry.counter_value("deadline.shed")),
            "asrs": asrs,
        }
        return ok, payload

    def execute_query(self, text: str, trace=None):
        """Run one ``POST /query`` text end to end; returns the outcome.

        Each HTTP request runs on its own :class:`ThreadingHTTPServer`
        thread, so the query borrows a fresh context from the shared
        pool for its lifetime (accounting stays exact), and its charged
        pages are priced on the shared device model *after* all locks
        are released — the same discipline as replayed operations.

        ``trace`` (opened by the handler) is activated on this thread so
        the read-lock wait and the ASR lookups attribute to it; the
        service books ``cache-hit`` / ``plan`` / ``execute``, the device
        books ``device``, and the handler finishes with ``serialize``.
        """
        world = self.world
        if trace is None:
            with world.pool.context() as context:
                outcome = world.queries.execute(text, context=context)
            pages = outcome.report.total_pages
            if pages and self._device is not None:
                self._device.charge(pages)
        else:
            with activate(trace):
                with world.pool.context() as context:
                    outcome = world.queries.execute(
                        text, context=context, trace=trace
                    )
                pages = outcome.report.total_pages
                if pages and self._device is not None:
                    self._device.charge(pages, trace=trace)
        world.registry.inc(
            "serve.queries", cached="true" if outcome.cached else "false"
        )
        # The front door feeds the advisor's measured mix too: a textual
        # select resolves anchors from terminal values — a full backward
        # traversal in chain-path shape.
        world.recorder.record_query(0, world.recorder.path.n, "bw")
        return outcome

    def advisor_payload(self) -> dict:
        """The ``GET /advisor`` payload (``{"enabled": false}`` when off)."""
        if self._advisor is None:
            return {"enabled": False}
        return {"enabled": True, **self._advisor.describe()}

    def stats_payload(self) -> dict:
        """The ``/stats`` payload — the ``repro stats --json`` triple."""
        world = self.world
        with world.manager.exclusive():
            accounting = world.pool.check_accounting(world.registry)
        return {
            "metrics": world.registry.snapshot(),
            "drift": world.drift.report(),
            "accounting": accounting,
        }


def _make_handler(daemon: ServeDaemon) -> type:
    """A request handler class closed over ``daemon``."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1.0"

        def log_message(self, *_args) -> None:  # keep the daemon's stdout clean
            pass

        def _instrumented(self, handler) -> None:
            """Run one request handler; self-report count and latency.

            Every endpoint — scrapes included — lands in
            ``http.requests{endpoint}`` / ``http.latency_ms{endpoint}``,
            so the observability plane observes itself.
            """
            registry = daemon.world.registry
            endpoint = _endpoint_label(self.path)
            started = time.perf_counter()
            try:
                handler()
            finally:
                registry.inc("http.requests", endpoint=endpoint)
                registry.observe(
                    "http.latency_ms",
                    (time.perf_counter() - started) * 1e3,
                    endpoint=endpoint,
                )

        def _send(self, status: int, content_type: str, body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, payload: dict) -> None:
            self._send(status, "application/json", json.dumps(payload, indent=2))

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            self._instrumented(self._do_get)

        def _do_get(self) -> None:
            try:
                path, _, query_string = self.path.partition("?")
                if path == "/metrics":
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        daemon.world.registry.render_prometheus(),
                    )
                elif path == "/healthz":
                    ok, payload = daemon.health()
                    self._send_json(200 if ok else 503, payload)
                elif path == "/stats":
                    self._send_json(200, daemon.stats_payload())
                elif path == "/advisor":
                    self._send_json(200, daemon.advisor_payload())
                elif path == "/trace/recent":
                    limit = 50
                    for part in query_string.split("&"):
                        key, _, value = part.partition("=")
                        if key == "limit" and value.isdigit():
                            limit = int(value)
                    tracer = daemon.world.tracer
                    self._send_json(
                        200,
                        {
                            "tracing": tracer.describe(),
                            "traces": [
                                trace.summary()
                                for trace in tracer.store.recent(limit)
                            ],
                        },
                    )
                elif path.startswith("/trace/"):
                    trace = daemon.world.tracer.store.get(path[len("/trace/") :])
                    if trace is None:
                        self._send_json(
                            404,
                            {"error": "trace not found (evicted or never retained)"},
                        )
                    else:
                        self._send_json(200, trace.as_dict())
                else:
                    self._send_json(
                        404,
                        {
                            "error": f"unknown path {self.path!r}",
                            "endpoints": _ENDPOINTS,
                        },
                    )
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                self._send_json(500, {"error": repr(error)})

        def _bad_request(self, message: str) -> None:
            daemon.world.registry.inc("query.errors", kind="bad-request")
            self._send_json(
                400, {"error": {"kind": "bad-request", "message": message}}
            )

        def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            self._instrumented(self._do_post)

        def _do_post(self) -> None:
            try:
                if self.path != "/query":
                    self._send_json(
                        404,
                        {
                            "error": f"unknown path {self.path!r}",
                            "endpoints": _ENDPOINTS,
                        },
                    )
                    return
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length > 0 else b""
                try:
                    body = json.loads(raw.decode("utf-8")) if raw else None
                except (UnicodeDecodeError, json.JSONDecodeError) as error:
                    self._bad_request(f"body is not valid JSON: {error}")
                    return
                if not isinstance(body, dict):
                    self._bad_request('body must be a JSON object {"query": "…"}')
                    return
                text = body.get("query")
                if not isinstance(text, str) or not text.strip():
                    self._bad_request('"query" must be a non-empty string')
                    return
                tracer = daemon.world.tracer
                trace = tracer.begin("POST /query", "query")
                try:
                    outcome = daemon.execute_query(text, trace=trace)
                except ParseError as error:
                    tracer.finish(trace, "error")
                    self._send_json(
                        400, {"error": {"kind": "parse", "message": str(error)}}
                    )
                    return
                except QueryError as error:
                    tracer.finish(trace, "error")
                    self._send_json(
                        400, {"error": {"kind": "validate", "message": str(error)}}
                    )
                    return
                if trace is None:
                    body_text = json.dumps(outcome.payload(), indent=2)
                else:
                    # Rendering rows to JSON-clean cells is serialization
                    # work too, so the payload build sits inside the span.
                    with trace.span("serialize", "serialize"):
                        payload = outcome.payload()
                        payload["trace_id"] = trace.trace_id
                        body_text = json.dumps(payload, indent=2)
                    tracer.finish(trace)
                self._send(200, "application/json", body_text)
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                self._send_json(500, {"error": repr(error)})

    return Handler


def _endpoint_label(path: str) -> str:
    """The bounded-cardinality ``endpoint`` label for one request path."""
    path = path.partition("?")[0]
    if path in ("/metrics", "/healthz", "/stats", "/advisor", "/query", "/trace/recent"):
        return path
    if path.startswith("/trace/"):
        return "/trace/:id"
    return "other"


#: What the 404 payload advertises.
_ENDPOINTS = [
    "/metrics",
    "/healthz",
    "/stats",
    "/advisor",
    "/trace/recent",
    "/trace/<id>",
    "POST /query",
]
