"""A B+ tree with per-node page accounting.

Access support relation partitions are stored in *two redundant* B+ trees
(section 5.2, following Valduriez's join indices): one clustered on the
partition's first column, one on its last.  This module provides the
underlying tree: unique totally ordered keys, values at the leaves,
leaves doubly linked for range scans, interior nodes holding separators.

Duplicate logical keys (one OID starting many partial paths) are handled
one level up (:mod:`repro.asr.asr`) by composite keys ``(cell key, row
tie-break)``; this keeps the tree itself in the textbook unique-key
regime with full delete rebalancing (borrow from siblings, merge,
root collapse).

Every node is one page.  Read operations accept a ``context`` — an
:class:`~repro.context.ExecutionContext` or a raw buffer scope (see
:mod:`repro.storage.stats`) — and charge one page read per distinct node
touched; mutating operations charge page writes for each node they dirty.
Passing ``context=None`` performs the operation without accounting (the
logical layer uses that).  The historical ``buffer=`` keyword is still
accepted with a deprecation warning.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from math import ceil
from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.stats import resolve_buffer

_INTERIOR_CATEGORY = "btree_interior"
_LEAF_CATEGORY = "btree_leaf"


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None

    is_leaf = True

    def __len__(self) -> int:
        return len(self.keys)


class _Interior:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # keys[i] is the smallest key reachable in children[i + 1].
        self.keys: list[Any] = []
        self.children: list[Any] = []

    is_leaf = False

    def __len__(self) -> int:
        return len(self.children)


class BPlusTree:
    """A unique-key B+ tree.

    Parameters
    ----------
    leaf_capacity:
        Maximum number of entries per leaf page (the model's ``atpp``).
    interior_capacity:
        Maximum number of children per interior page (the model's
        ``B+fan``).
    """

    def __init__(self, leaf_capacity: int, interior_capacity: int) -> None:
        if leaf_capacity < 2:
            raise StorageError("leaf capacity must be at least 2")
        if interior_capacity < 3:
            raise StorageError("interior capacity must be at least 3")
        self.leaf_capacity = leaf_capacity
        self.interior_capacity = interior_capacity
        self._root: _Leaf | _Interior = _Leaf()
        self._size = 0

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.search(key) is not _MISSING

    @property
    def height(self) -> int:
        """Number of levels including the leaf level (>= 1)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            levels += 1
            node = node.children[0]
        return levels

    @property
    def interior_height(self) -> int:
        """Levels excluding the leaves — the cost model's ``ht`` (Eq. 19)."""
        return self.height - 1

    def leaf_count(self) -> int:
        count = 0
        leaf = self._leftmost_leaf()
        while leaf is not None:
            count += 1
            leaf = leaf.next
        return count

    def interior_count(self) -> int:
        if self._root.is_leaf:
            return 0
        count = 0
        level = [self._root]
        while level and not level[0].is_leaf:
            count += len(level)
            level = [child for node in level for child in node.children]
        return count

    def _leftmost_leaf(self, buffer=None) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            _touch(buffer, node, _INTERIOR_CATEGORY)
            node = node.children[0]
        return node

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _descend(self, key: Any, buffer=None) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            _touch(buffer, node, _INTERIOR_CATEGORY)
            node = node.children[bisect_right(node.keys, key)]
        return node

    def search(self, key: Any, context=None, *, buffer=None) -> Any:
        """The value stored under ``key``, or the ``MISSING`` sentinel."""
        buffer = resolve_buffer(context, buffer)
        leaf = self._descend(key, buffer)
        _touch(buffer, leaf, _LEAF_CATEGORY)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return _MISSING

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        context=None,
        *,
        buffer=None,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` for ``lo <= key < hi`` in key order.

        ``None`` bounds are open.  Pages are charged as the scan touches
        them (interior pages on the initial descent, every leaf visited).

        The scan is lazy, and so is its accounting: when called with an
        :class:`~repro.context.ExecutionContext`, the charge target is
        resolved each time a page is touched — i.e. at *consumption*
        time — not when ``range`` is called.  A range created in one
        operation span but iterated in another therefore charges the
        span that actually does the reading, and a range that is never
        consumed charges nothing.
        """
        if buffer is None and context is not None and hasattr(context, "current_buffer"):
            return self._range(lo, hi, _DeferredContextBuffer(context))
        buffer = resolve_buffer(context, buffer)
        return self._range(lo, hi, buffer)

    def _range(self, lo: Any, hi: Any, buffer) -> Iterator[tuple[Any, Any]]:
        if lo is None:
            leaf: _Leaf | None = self._leftmost_leaf(buffer)
            index = 0
        else:
            leaf = self._descend(lo, buffer)
            index = bisect_left(leaf.keys, lo)
        while leaf is not None:
            _touch(buffer, leaf, _LEAF_CATEGORY)
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if hi is not None and not key < hi:
                    return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next
            index = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self.range()

    def keys(self) -> Iterator[Any]:
        return (key for key, _ in self.range())

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any, context=None, *, buffer=None) -> None:
        """Insert a new entry; raises :class:`StorageError` on duplicate key."""
        buffer = resolve_buffer(context, buffer)
        split = self._insert(self._root, key, value, buffer)
        if split is not None:
            separator, right = split
            new_root = _Interior()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            _touch_write(buffer, new_root, _INTERIOR_CATEGORY)
        self._size += 1

    def _insert(self, node, key, value, buffer):
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise StorageError(f"duplicate key {key!r}")
            node.keys.insert(index, key)
            node.values.insert(index, value)
            _touch_write(buffer, node, _LEAF_CATEGORY)
            if len(node.keys) > self.leaf_capacity:
                return self._split_leaf(node, buffer)
            return None
        child_index = bisect_right(node.keys, key)
        split = self._insert(node.children[child_index], key, value, buffer)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right)
        _touch_write(buffer, node, _INTERIOR_CATEGORY)
        if len(node.children) > self.interior_capacity:
            return self._split_interior(node, buffer)
        return None

    def _split_leaf(self, leaf: _Leaf, buffer) -> tuple[Any, _Leaf]:
        middle = (len(leaf.keys) + 1) // 2
        right = _Leaf()
        right.keys = leaf.keys[middle:]
        right.values = leaf.values[middle:]
        del leaf.keys[middle:]
        del leaf.values[middle:]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        _touch_write(buffer, right, _LEAF_CATEGORY)
        return right.keys[0], right

    def _split_interior(self, node: _Interior, buffer) -> tuple[Any, _Interior]:
        middle = len(node.children) // 2
        right = _Interior()
        separator = node.keys[middle - 1]
        right.keys = node.keys[middle:]
        right.children = node.children[middle:]
        del node.keys[middle - 1 :]
        del node.children[middle:]
        _touch_write(buffer, right, _INTERIOR_CATEGORY)
        return separator, right

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, key: Any, context=None, *, buffer=None) -> bool:
        """Remove ``key``; returns False when it was not present."""
        buffer = resolve_buffer(context, buffer)
        removed = self._delete(self._root, key, buffer)
        if removed:
            self._size -= 1
            if not self._root.is_leaf and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def _min_leaf_fill(self) -> int:
        return ceil(self.leaf_capacity / 2)

    def _min_interior_fill(self) -> int:
        return ceil(self.interior_capacity / 2)

    def _delete(self, node, key, buffer) -> bool:
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            del node.keys[index]
            del node.values[index]
            _touch_write(buffer, node, _LEAF_CATEGORY)
            return True
        child_index = bisect_right(node.keys, key)
        child = node.children[child_index]
        removed = self._delete(child, key, buffer)
        if removed and self._is_underfull(child):
            self._rebalance(node, child_index, buffer)
            _touch_write(buffer, node, _INTERIOR_CATEGORY)
        return removed

    def _is_underfull(self, node) -> bool:
        if node.is_leaf:
            return len(node.keys) < self._min_leaf_fill()
        return len(node.children) < self._min_interior_fill()

    def _rebalance(self, parent: _Interior, index: int, buffer) -> None:
        child = parent.children[index]
        left = parent.children[index - 1] if index > 0 else None
        right = parent.children[index + 1] if index + 1 < len(parent.children) else None
        if left is not None and self._can_lend(left):
            self._borrow_from_left(parent, index, buffer)
        elif right is not None and self._can_lend(right):
            self._borrow_from_right(parent, index, buffer)
        elif left is not None:
            self._merge(parent, index - 1, buffer)
        else:
            self._merge(parent, index, buffer)

    def _can_lend(self, node) -> bool:
        if node.is_leaf:
            return len(node.keys) > self._min_leaf_fill()
        return len(node.children) > self._min_interior_fill()

    def _borrow_from_left(self, parent: _Interior, index: int, buffer) -> None:
        child = parent.children[index]
        left = parent.children[index - 1]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        _touch_write(buffer, child, _category(child))
        _touch_write(buffer, left, _category(left))

    def _borrow_from_right(self, parent: _Interior, index: int, buffer) -> None:
        child = parent.children[index]
        right = parent.children[index + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        _touch_write(buffer, child, _category(child))
        _touch_write(buffer, right, _category(right))

    def _merge(self, parent: _Interior, left_index: int, buffer) -> None:
        """Merge ``children[left_index + 1]`` into ``children[left_index]``."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
            if right.next is not None:
                right.next.prev = left
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_index]
        del parent.children[left_index + 1]
        _touch_write(buffer, left, _category(left))

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        entries: Sequence[tuple[Any, Any]],
        leaf_capacity: int,
        interior_capacity: int,
        fill_factor: float = 1.0,
    ) -> "BPlusTree":
        """Build a tree from *sorted, duplicate-free* ``(key, value)`` pairs.

        Leaves are packed to ``fill_factor`` of capacity (1.0 matches the
        cost model's ``ap = ⌈#E / atpp⌉`` leaf-page count).
        """
        tree = cls(leaf_capacity, interior_capacity)
        if not entries:
            return tree
        keys = [key for key, _ in entries]
        if any(not a < b for a, b in zip(keys, keys[1:])):
            raise StorageError("bulk_load requires strictly sorted unique keys")
        per_leaf = max(2, min(leaf_capacity, int(leaf_capacity * fill_factor)))
        leaves: list[_Leaf] = []
        for start in range(0, len(entries), per_leaf):
            chunk = entries[start : start + per_leaf]
            leaf = _Leaf()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            if leaves:
                leaves[-1].next = leaf
                leaf.prev = leaves[-1]
            leaves.append(leaf)
        # Avoid an underfull final leaf (rebalance with its predecessor).
        if len(leaves) > 1 and len(leaves[-1].keys) < ceil(leaf_capacity / 2):
            last, before = leaves[-1], leaves[-2]
            combined_keys = before.keys + last.keys
            combined_values = before.values + last.values
            half = len(combined_keys) // 2
            before.keys, last.keys = combined_keys[:half], combined_keys[half:]
            before.values, last.values = combined_values[:half], combined_values[half:]
        level: list[Any] = leaves
        while len(level) > 1:
            next_level: list[Any] = []
            for start in range(0, len(level), interior_capacity):
                group = level[start : start + interior_capacity]
                if len(group) == 1:
                    next_level.append(group[0])
                    continue
                node = _Interior()
                node.children = group
                node.keys = [cls._smallest_key(child) for child in group[1:]]
                next_level.append(node)
            # Avoid an interior node with a single child at the tail.
            if (
                len(next_level) >= 2
                and not next_level[-1].is_leaf
                and len(next_level[-1].children) < 2
            ):
                orphan = next_level.pop()
                target = next_level[-1]
                target.keys.append(cls._smallest_key(orphan.children[0]))
                target.children.extend(orphan.children)
            level = next_level
        tree._root = level[0]
        tree._size = len(entries)
        return tree

    @staticmethod
    def _smallest_key(node) -> Any:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # invariants (used by the test suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain is sorted and complete.
        collected = [key for key, _ in self.range()]
        assert collected == sorted(collected), "leaf chain out of order"
        assert len(collected) == self._size, "size counter out of sync"

    def _check_node(self, node, lo, hi, is_root=False) -> int:
        if node.is_leaf:
            assert len(node.keys) == len(node.values)
            if not is_root:
                assert len(node.keys) >= 1, "empty non-root leaf"
            for key in node.keys:
                assert lo is None or not key < lo
                assert hi is None or key < hi
            assert node.keys == sorted(node.keys)
            return 1
        assert len(node.children) == len(node.keys) + 1
        if not is_root:
            assert len(node.children) >= 2, "interior node with < 2 children"
        depths = set()
        bounds = [lo, *node.keys, hi]
        for index, child in enumerate(node.children):
            depths.add(self._check_node(child, bounds[index], bounds[index + 1]))
        assert len(depths) == 1, "unbalanced subtree depths"
        return depths.pop() + 1


class _Missing:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"


#: Sentinel returned by :meth:`BPlusTree.search` for absent keys (values
#: may legitimately be ``None``).
_MISSING = _Missing()
MISSING = _MISSING


class _DeferredContextBuffer:
    """A charge target that re-resolves the context's buffer per touch.

    Generators hand this to their page touches so that lazily consumed
    scans charge whatever buffer scope is current *when the page is
    actually read* (the consuming operation's span), not the scope that
    happened to be current when the generator was created.
    """

    __slots__ = ("context",)

    def __init__(self, context) -> None:
        self.context = context

    def touch(self, page_id, category: str = "page") -> bool:
        return self.context.current_buffer.touch(page_id, category)

    def touch_write(self, page_id, category: str = "page") -> bool:
        return self.context.current_buffer.touch_write(page_id, category)


def _touch(buffer, node, category: str) -> None:
    if buffer is not None:
        buffer.touch(id(node), category)


def _touch_write(buffer, node, category: str) -> None:
    if buffer is not None:
        buffer.touch_write(id(node), category)


def _category(node) -> str:
    return _LEAF_CATEGORY if node.is_leaf else _INTERIOR_CATEGORY
