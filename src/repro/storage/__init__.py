"""Page-granular storage substrate.

The paper's cost model measures everything in *secondary page accesses*
(section 5.6).  This subpackage provides an executable counterpart:

* :mod:`repro.storage.stats` — page-access counters and per-operation
  buffer scopes (a page read twice within one operation is charged once,
  matching Yao's distinct-page counting);
* :mod:`repro.storage.pages` — page-geometry arithmetic (objects/tuples
  per page, Eqs. 13–18);
* :mod:`repro.storage.btree` — a real B+ tree with per-node page
  accounting, used to store access support relation partitions in the two
  redundant clusterings of section 5.2;
* :mod:`repro.storage.objectstore` — type-clustered object pages, the
  physical home of the object representations that unsupported queries
  must traverse.
"""

from repro.storage.stats import AccessStats, BoundedBufferScope, BufferScope, NullBuffer
from repro.storage.pages import (
    DEFAULT_PAGE_SIZE,
    DEFAULT_OID_SIZE,
    DEFAULT_PP_SIZE,
    btree_fanout,
    objects_per_page,
    pages_needed,
    tuple_size,
    tuples_per_page,
)
from repro.storage.btree import BPlusTree
from repro.storage.objectstore import ClusteredObjectStore

__all__ = [
    "AccessStats",
    "BufferScope",
    "BoundedBufferScope",
    "NullBuffer",
    "BPlusTree",
    "ClusteredObjectStore",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_OID_SIZE",
    "DEFAULT_PP_SIZE",
    "btree_fanout",
    "objects_per_page",
    "pages_needed",
    "tuple_size",
    "tuples_per_page",
]
