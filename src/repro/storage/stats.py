"""Page-access accounting.

Every storage structure charges its page touches to an
:class:`AccessStats` instance.  A :class:`BufferScope` models the
per-operation buffer the analytical model implicitly assumes: within one
query or update, re-touching a page that is already resident is free —
this is exactly the "number of *distinct* pages" that Yao's formula
estimates (section 5.6).

Buffer scopes are also where simulated storage faults surface: a scope
constructed with a :class:`~repro.faults.FaultInjector` consults it on
every *charged* access (cache hits need no physical I/O and are never
faulted), so the B+ trees and the clustered object store see faults
exactly where a real engine would — on the page read/write boundary.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class AccessStats:
    """Counters for secondary-storage page accesses.

    ``page_reads``/``page_writes`` are the headline numbers the cost model
    predicts; ``by_category`` breaks them down by the structure that
    caused them (``object``, ``btree_interior``, ``btree_leaf``, …) which
    the validation benchmarks use to compare against individual cost-model
    terms.
    """

    page_reads: int = 0
    page_writes: int = 0
    by_category: dict[str, int] = field(default_factory=dict)

    def read(self, pages: int = 1, category: str = "page") -> None:
        self.page_reads += pages
        self.by_category[category] = self.by_category.get(category, 0) + pages

    def write(self, pages: int = 1, category: str = "page") -> None:
        self.page_writes += pages
        key = f"{category}:write"
        self.by_category[key] = self.by_category.get(key, 0) + pages

    @property
    def total(self) -> int:
        """Total page accesses (reads + writes) — the paper's cost measure."""
        return self.page_reads + self.page_writes

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.by_category.clear()

    def snapshot(self) -> "AccessStats":
        clone = AccessStats(self.page_reads, self.page_writes, dict(self.by_category))
        return clone

    def merge(self, other: "AccessStats") -> None:
        """Fold ``other``'s counters into this one.

        Used by :class:`~repro.concurrency.ContextPool` to accumulate a
        retired context's per-worker stats into the pool's running
        ``retired`` total, so the shared-vs-Σ-workers accounting
        invariant survives context recycling.
        """
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        for key, count in other.by_category.items():
            self.by_category[key] = self.by_category.get(key, 0) + count

    def delta_since(self, before: "AccessStats") -> "AccessStats":
        """The accesses accumulated since ``before`` (a prior snapshot)."""
        by_category = {
            key: count - before.by_category.get(key, 0)
            for key, count in self.by_category.items()
            if count - before.by_category.get(key, 0)
        }
        return AccessStats(
            self.page_reads - before.page_reads,
            self.page_writes - before.page_writes,
            by_category,
        )


class BufferScope:
    """A per-operation buffer: each distinct page is charged once.

    Storage structures call :meth:`touch` with a hashable page identity;
    the first touch within the scope charges one read to ``stats``,
    subsequent touches are free.  Writes are charged through
    :meth:`touch_write` (a page is written back at most once per scope).

    Use as a context manager around one logical operation::

        with BufferScope(stats) as buffer:
            tree.search(key, buffer)

    (Most callers get their scopes from an
    :class:`~repro.context.ExecutionContext` instead of instantiating
    one directly.)
    """

    def __init__(self, stats: AccessStats, injector=None) -> None:
        self.stats = stats
        #: Optional :class:`~repro.faults.FaultInjector` consulted on
        #: every charged access (duck-typed: anything with
        #: ``on_read``/``on_write``).
        self.injector = injector
        self._resident: set[Hashable] = set()
        self._dirty: set[Hashable] = set()

    def __enter__(self) -> "BufferScope":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        """Read ``page_id``; returns True when it caused a physical read."""
        if page_id in self._resident:
            return False
        if self.injector is not None:
            self.injector.on_read(page_id, category)
        self._resident.add(page_id)
        self.stats.read(1, category)
        return True

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        """Mark ``page_id`` dirty; returns True on the first write charge."""
        if page_id in self._dirty:
            return False
        if self.injector is not None:
            self.injector.on_write(page_id, category)
        self._dirty.add(page_id)
        self.stats.write(1, category)
        return True

    @property
    def distinct_pages(self) -> int:
        return len(self._resident)

    def evict_all(self) -> None:
        """Forget residency (the next touches are charged again)."""
        self._resident.clear()
        self._dirty.clear()


def resolve_buffer(context=None, buffer=None):
    """Normalize ``(context=, buffer=)`` parameters to a raw buffer scope.

    Every charged entry point accepts its accounting sink through a
    ``context`` parameter that may be

    * ``None`` — no accounting (returns ``None``);
    * an :class:`~repro.context.ExecutionContext` — charge its current
      buffer (recognized by its ``current_buffer`` attribute, so this
      module needs no import of the higher layer);
    * a raw buffer scope (anything with ``touch``/``touch_write``) —
      charge it directly, which is how pre-context code passed buffers
      positionally and remains supported.

    The keyword-only ``buffer=`` spelling is deprecated but honoured.
    """
    if buffer is not None:
        warnings.warn(
            "the 'buffer=' parameter is deprecated; pass an ExecutionContext "
            "(or a buffer scope) via 'context=' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if context is None:
            context = buffer
    if context is None:
        return None
    current = getattr(context, "current_buffer", None)
    if current is not None:
        return current
    if hasattr(context, "touch"):
        return context
    raise TypeError(
        f"expected an ExecutionContext or buffer scope, got {type(context).__name__}"
    )


class NullBuffer:
    """A buffer that charges every touch (no caching) to its stats."""

    def __init__(self, stats: AccessStats, injector=None) -> None:
        self.stats = stats
        self.injector = injector

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        if self.injector is not None:
            self.injector.on_read(page_id, category)
        self.stats.read(1, category)
        return True

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        if self.injector is not None:
            self.injector.on_write(page_id, category)
        self.stats.write(1, category)
        return True


class BoundedBufferScope(BufferScope):
    """A buffer with finite capacity and LRU replacement.

    The plain :class:`BufferScope` models the paper's implicit
    assumption of a buffer large enough to hold one operation's working
    set (Yao's distinct-page counting).  This variant bounds residency at
    ``capacity`` pages: re-touching an evicted page is charged again,
    which is what a real, smaller buffer pool would do.  Used by the
    buffer-sensitivity ablation benchmark and the ``bounded`` policy of
    :class:`~repro.context.ExecutionContext`.

    Writes participate in residency and recency exactly like reads: a
    written page occupies a frame, dirtying it refreshes its recency,
    and a page written again after eviction is charged a second write
    (the first write-back already happened at eviction time).
    """

    def __init__(self, stats: AccessStats, capacity: int, injector=None) -> None:
        super().__init__(stats, injector)
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.capacity = capacity
        #: Pages pushed out by LRU replacement since construction.
        self.evictions = 0
        # page id -> dirty flag; insertion order is recency order.
        self._lru: dict[Hashable, bool] = {}

    def _evict_excess(self) -> None:
        while len(self._lru) > self.capacity:
            evicted = next(iter(self._lru))
            del self._lru[evicted]
            self.evictions += 1

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        if page_id in self._lru:
            dirty = self._lru.pop(page_id)
            self._lru[page_id] = dirty  # refresh recency
            return False
        if self.injector is not None:
            self.injector.on_read(page_id, category)
        self.stats.read(1, category)
        self._lru[page_id] = False
        self._evict_excess()
        return True

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        if page_id in self._lru:
            if not self._lru[page_id] and self.injector is not None:
                self.injector.on_write(page_id, category)
            dirty = self._lru.pop(page_id)
            self._lru[page_id] = True  # refresh recency, mark dirty
            if dirty:
                return False
            self.stats.write(1, category)
            return True
        if self.injector is not None:
            self.injector.on_write(page_id, category)
        self.stats.write(1, category)
        self._lru[page_id] = True
        self._evict_excess()
        return True

    @property
    def distinct_pages(self) -> int:
        return len(self._lru)

    def evict_all(self) -> None:
        self._lru.clear()
        self._dirty.clear()


class ThreadSafeAccessStats(AccessStats):
    """An :class:`AccessStats` whose accumulation is lock-protected.

    Charged concurrently by every worker of a
    :class:`~repro.concurrency.ContextPool`; ``snapshot`` and
    ``delta_since`` take the same lock so a reader never observes a
    half-applied increment (``page_reads`` bumped, ``by_category`` not
    yet).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lock = threading.Lock()

    def read(self, pages: int = 1, category: str = "page") -> None:
        with self._lock:
            super().read(pages, category)

    def write(self, pages: int = 1, category: str = "page") -> None:
        with self._lock:
            super().write(pages, category)

    def reset(self) -> None:
        with self._lock:
            super().reset()

    def snapshot(self) -> AccessStats:
        with self._lock:
            return AccessStats(
                self.page_reads, self.page_writes, dict(self.by_category)
            )


class SharedBufferPool(BoundedBufferScope):
    """A thread-safe bounded LRU pool shared by many execution contexts.

    One internal lock covers the LRU order, the residency decision, and
    the stats charge, so concurrent touches can never tear the recency
    list or double-charge a resident page.  Hit/miss counters accumulate
    under the same lock; :attr:`hit_rate` is the headline number the
    serve benchmark reports.

    The pool is handed to workers through :class:`WorkerScope` views
    (usually via :class:`~repro.concurrency.ContextPool`), which mirror
    each worker's charges onto a thread-private :class:`AccessStats` —
    the shared totals then provably equal the per-worker sums.
    """

    def __init__(self, stats: AccessStats, capacity: int, injector=None) -> None:
        super().__init__(stats, capacity, injector)
        self._pool_lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        with self._pool_lock:
            charged = super().touch(page_id, category)
            if charged:
                self.misses += 1
            else:
                self.hits += 1
            return charged

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        with self._pool_lock:
            charged = super().touch_write(page_id, category)
            if charged:
                self.misses += 1
            else:
                self.hits += 1
            return charged

    def evict_all(self) -> None:
        with self._pool_lock:
            super().evict_all()

    @property
    def distinct_pages(self) -> int:
        with self._pool_lock:
            return len(self._lru)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def check_invariants(self) -> None:
        """Assert the LRU is not torn (used by the stress suite)."""
        with self._pool_lock:
            assert len(self._lru) <= self.capacity, (
                f"LRU overflow: {len(self._lru)} frames > capacity {self.capacity}"
            )
            assert all(isinstance(dirty, bool) for dirty in self._lru.values()), (
                "LRU dirty flags torn"
            )


class WorkerScope:
    """One worker's view of a :class:`SharedBufferPool`.

    Residency and replacement are decided by the shared pool (which
    charges the shared stats); every charge is *mirrored* onto the
    worker's private ``stats`` so operation spans measured on a single
    worker stay accurate even while other workers charge the pool
    concurrently.  The private stats are only ever touched by the
    owning thread, so they need no lock.
    """

    def __init__(self, pool: SharedBufferPool, stats: AccessStats) -> None:
        self.pool = pool
        self.stats = stats

    @property
    def capacity(self) -> int:
        return self.pool.capacity

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        charged = self.pool.touch(page_id, category)
        if charged:
            self.stats.read(1, category)
        return charged

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        charged = self.pool.touch_write(page_id, category)
        if charged:
            self.stats.write(1, category)
        return charged

    @property
    def distinct_pages(self) -> int:
        return self.pool.distinct_pages

    def evict_all(self) -> None:
        self.pool.evict_all()
