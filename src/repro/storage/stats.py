"""Page-access accounting.

Every storage structure charges its page touches to an
:class:`AccessStats` instance.  A :class:`BufferScope` models the
per-operation buffer the analytical model implicitly assumes: within one
query or update, re-touching a page that is already resident is free —
this is exactly the "number of *distinct* pages" that Yao's formula
estimates (section 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


@dataclass
class AccessStats:
    """Counters for secondary-storage page accesses.

    ``page_reads``/``page_writes`` are the headline numbers the cost model
    predicts; ``by_category`` breaks them down by the structure that
    caused them (``object``, ``btree_interior``, ``btree_leaf``, …) which
    the validation benchmarks use to compare against individual cost-model
    terms.
    """

    page_reads: int = 0
    page_writes: int = 0
    by_category: dict[str, int] = field(default_factory=dict)

    def read(self, pages: int = 1, category: str = "page") -> None:
        self.page_reads += pages
        self.by_category[category] = self.by_category.get(category, 0) + pages

    def write(self, pages: int = 1, category: str = "page") -> None:
        self.page_writes += pages
        key = f"{category}:write"
        self.by_category[key] = self.by_category.get(key, 0) + pages

    @property
    def total(self) -> int:
        """Total page accesses (reads + writes) — the paper's cost measure."""
        return self.page_reads + self.page_writes

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.by_category.clear()

    def snapshot(self) -> "AccessStats":
        clone = AccessStats(self.page_reads, self.page_writes, dict(self.by_category))
        return clone

    def delta_since(self, before: "AccessStats") -> "AccessStats":
        """The accesses accumulated since ``before`` (a prior snapshot)."""
        by_category = {
            key: count - before.by_category.get(key, 0)
            for key, count in self.by_category.items()
            if count - before.by_category.get(key, 0)
        }
        return AccessStats(
            self.page_reads - before.page_reads,
            self.page_writes - before.page_writes,
            by_category,
        )


class BufferScope:
    """A per-operation buffer: each distinct page is charged once.

    Storage structures call :meth:`touch` with a hashable page identity;
    the first touch within the scope charges one read to ``stats``,
    subsequent touches are free.  Writes are charged through
    :meth:`touch_write` (a page is written back at most once per scope).

    Use as a context manager around one logical operation::

        with BufferScope(stats) as buffer:
            evaluator.run(query, buffer=buffer)
    """

    def __init__(self, stats: AccessStats) -> None:
        self.stats = stats
        self._resident: set[Hashable] = set()
        self._dirty: set[Hashable] = set()

    def __enter__(self) -> "BufferScope":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        """Read ``page_id``; returns True when it caused a physical read."""
        if page_id in self._resident:
            return False
        self._resident.add(page_id)
        self.stats.read(1, category)
        return True

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        """Mark ``page_id`` dirty; returns True on the first write charge."""
        if page_id in self._dirty:
            return False
        self._dirty.add(page_id)
        self.stats.write(1, category)
        return True

    @property
    def distinct_pages(self) -> int:
        return len(self._resident)

    def evict_all(self) -> None:
        """Forget residency (the next touches are charged again)."""
        self._resident.clear()
        self._dirty.clear()


class NullBuffer:
    """A buffer that charges every touch (no caching) to its stats."""

    def __init__(self, stats: AccessStats) -> None:
        self.stats = stats

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        self.stats.read(1, category)
        return True

    def touch_write(self, page_id: Hashable, category: str = "page") -> bool:
        self.stats.write(1, category)
        return True


class BoundedBufferScope(BufferScope):
    """A buffer with finite capacity and LRU replacement.

    The plain :class:`BufferScope` models the paper's implicit
    assumption of a buffer large enough to hold one operation's working
    set (Yao's distinct-page counting).  This variant bounds residency at
    ``capacity`` pages: re-touching an evicted page is charged again,
    which is what a real, smaller buffer pool would do.  Used by the
    buffer-sensitivity ablation benchmark.
    """

    def __init__(self, stats: AccessStats, capacity: int) -> None:
        super().__init__(stats)
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        self.capacity = capacity
        self._lru: dict[Hashable, None] = {}

    def touch(self, page_id: Hashable, category: str = "page") -> bool:
        if page_id in self._lru:
            self._lru.pop(page_id)
            self._lru[page_id] = None  # refresh recency
            return False
        self.stats.read(1, category)
        self._lru[page_id] = None
        if len(self._lru) > self.capacity:
            evicted = next(iter(self._lru))
            del self._lru[evicted]
        return True

    @property
    def distinct_pages(self) -> int:
        return len(self._lru)

    def evict_all(self) -> None:
        self._lru.clear()
        self._dirty.clear()
