"""Type-clustered object storage.

The cost model assumes "objects are clustered dependent on their type"
(section 5.5): the ``c_i`` objects of type ``t_i`` live on
``op_i = ⌈c_i / opp_i⌉`` dedicated pages with ``opp_i = ⌊PageSize/size_i⌋``
objects per page.  :class:`ClusteredObjectStore` realizes exactly that
layout for a live :class:`~repro.gom.database.ObjectBase` so the
simulator can charge page reads for object dereferences and exhaustive
extent scans — the operations that dominate *unsupported* query
evaluation (section 5.6).

The store is a physical overlay: it maps OIDs to page slots and counts
accesses; the object *contents* stay in the object base.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StorageError
from repro.storage.stats import resolve_buffer
from repro.gom.database import ObjectBase
from repro.gom.events import Event, ObjectCreated, ObjectDeleted
from repro.gom.objects import OID
from repro.storage.pages import DEFAULT_PAGE_SIZE, objects_per_page, pages_needed


class ClusteredObjectStore:
    """Assigns every object of a type to type-clustered pages.

    Parameters
    ----------
    object_sizes:
        ``type name → size_i`` in bytes.  Types without an entry fall back
        to ``default_object_size``.
    page_size:
        Net page capacity in bytes (Figure 3 default: 4056).
    """

    def __init__(
        self,
        object_sizes: dict[str, int] | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        default_object_size: int = 100,
    ) -> None:
        if default_object_size <= 0:
            raise StorageError("default object size must be positive")
        self.page_size = page_size
        self.object_sizes = dict(object_sizes or {})
        self.default_object_size = default_object_size
        self._slot_of: dict[OID, int] = {}
        self._count_of_type: dict[str, int] = {}
        self._free_slots: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, db: ObjectBase) -> None:
        """Register all existing objects and track future ones via events."""
        for instance in db.objects():
            self.register(instance.oid, instance.type_name)
        db.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        if isinstance(event, ObjectCreated):
            self.register(event.oid, event.type_name)
        elif isinstance(event, ObjectDeleted):
            self.unregister(event.oid, event.type_name)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def object_size(self, type_name: str) -> int:
        return self.object_sizes.get(type_name, self.default_object_size)

    def objects_per_page(self, type_name: str) -> int:
        """``opp_i`` (Eq. 17)."""
        return objects_per_page(self.object_size(type_name), self.page_size)

    def register(self, oid: OID, type_name: str) -> None:
        if oid in self._slot_of:
            raise StorageError(f"{oid!r} already registered")
        free = self._free_slots.get(type_name)
        if free:
            slot = free.pop()
        else:
            slot = self._count_of_type.get(type_name, 0)
            self._count_of_type[type_name] = slot + 1
        self._slot_of[oid] = slot

    def unregister(self, oid: OID, type_name: str) -> None:
        slot = self._slot_of.pop(oid, None)
        if slot is not None:
            self._free_slots.setdefault(type_name, []).append(slot)

    def page_of(self, oid: OID, type_name: str) -> tuple[str, int]:
        """The page identity holding ``oid``: ``(type, page number)``."""
        try:
            slot = self._slot_of[oid]
        except KeyError:
            raise StorageError(f"{oid!r} is not stored") from None
        return (type_name, slot // self.objects_per_page(type_name))

    def pages_of_type(self, type_name: str) -> int:
        """``op_i`` (Eq. 18) for the objects currently stored."""
        count = self._count_of_type.get(type_name, 0) - len(
            self._free_slots.get(type_name, ())
        )
        if count <= 0:
            return 0
        return pages_needed(count, self.objects_per_page(type_name))

    # ------------------------------------------------------------------
    # charged accesses
    # ------------------------------------------------------------------

    def access(self, oid: OID, type_name: str, context=None, *, buffer=None) -> None:
        """Charge the page read for dereferencing ``oid``."""
        buffer = resolve_buffer(context, buffer)
        if buffer is not None:
            buffer.touch(("obj",) + self.page_of(oid, type_name), "object")

    def write(self, oid: OID, type_name: str, context=None, *, buffer=None) -> None:
        """Charge the page write for updating ``oid`` in place."""
        buffer = resolve_buffer(context, buffer)
        if buffer is not None:
            buffer.touch_write(("obj",) + self.page_of(oid, type_name), "object")

    def scan_type(self, type_name: str, context=None, *, buffer=None) -> None:
        """Charge a full extent scan of ``type_name`` (``op_i`` page reads)."""
        buffer = resolve_buffer(context, buffer)
        if buffer is None:
            return
        for page in range(self.pages_of_type(type_name)):
            buffer.touch(("obj", type_name, page), "object")

    def access_all(
        self, oids: Iterable[OID], type_name: str, context=None, *, buffer=None
    ) -> None:
        """Charge reads for a set of same-typed objects (distinct pages once)."""
        buffer = resolve_buffer(context, buffer)
        for oid in oids:
            self.access(oid, type_name, buffer)
