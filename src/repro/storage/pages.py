"""Page-geometry arithmetic (Figure 3 and Eqs. 13–18 of the paper).

All quantities are pure functions of the system parameters so that the
storage simulator and the analytical cost model share one source of
truth for the layout arithmetic.
"""

from __future__ import annotations

import math

from repro.errors import StorageError

#: Net page size in bytes (Figure 3: ``PageSize = 4056``).
DEFAULT_PAGE_SIZE = 4056
#: Size of an object identifier in bytes (Figure 3: ``OIDsize = 8``).
DEFAULT_OID_SIZE = 8
#: Size of a page pointer in bytes (Figure 3: ``PPsize = 4``).
DEFAULT_PP_SIZE = 4


def btree_fanout(
    page_size: int = DEFAULT_PAGE_SIZE,
    pp_size: int = DEFAULT_PP_SIZE,
    oid_size: int = DEFAULT_OID_SIZE,
) -> int:
    """``B+fan = ⌊PageSize / (PPsize + OIDsize)⌋`` (Figure 3)."""
    fanout = page_size // (pp_size + oid_size)
    if fanout < 2:
        raise StorageError("page size too small for a B+ tree node")
    return fanout


def tuple_size(first_column: int, last_column: int, oid_size: int = DEFAULT_OID_SIZE) -> int:
    """``ats(i,j) = OIDsize · (j - i + 1)`` (Eq. 13): bytes per partition tuple."""
    if last_column < first_column:
        raise StorageError(f"invalid column range ({first_column}, {last_column})")
    return oid_size * (last_column - first_column + 1)


def tuples_per_page(
    first_column: int,
    last_column: int,
    page_size: int = DEFAULT_PAGE_SIZE,
    oid_size: int = DEFAULT_OID_SIZE,
) -> int:
    """``atpp(i,j) = ⌊PageSize / ats(i,j)⌋`` (Eq. 14)."""
    per_page = page_size // tuple_size(first_column, last_column, oid_size)
    if per_page < 1:
        raise StorageError("a partition tuple does not fit on one page")
    return per_page


def objects_per_page(object_size: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """``opp_i = ⌊PageSize / size_i⌋`` (Eq. 17), at least one object per page.

    The paper's formula can reach zero for objects larger than a page; we
    clamp to one (an over-page object occupies its page(s) alone), which
    keeps both simulator and model defined for large ``size_i`` sweeps.
    """
    if object_size <= 0:
        raise StorageError(f"object size must be positive, got {object_size}")
    return max(1, page_size // object_size)


def pages_needed(count: int, per_page: int) -> int:
    """``⌈count / per_page⌉`` — Eqs. 16 and 18."""
    if per_page <= 0:
        raise StorageError("per_page must be positive")
    if count < 0:
        raise StorageError("count must be non-negative")
    return math.ceil(count / per_page)
