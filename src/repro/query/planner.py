"""Plan selection: which ASR (if any) should answer a query.

Implements the case analysis of Eq. 35: an access support relation can
answer ``Q_{i,j}`` only when its extension covers the query's range
(canonical: whole path; left: prefixes; right: suffixes; full: any), and
otherwise the query falls back to unsupported evaluation.  When several
registered ASRs apply, the planner ranks them by an estimate of the pages
a supported evaluation touches (partition data pages along the query
range, which dominates; tree interiors are comparatively tiny).

Quarantined ASRs (see :mod:`repro.asr.journal`) are never candidates:
their trees may be torn, so the planner degrades to another applicable
decomposition or to the unsupported evaluation — results stay correct,
only the page profile suffers.  Degraded decisions are counted in the
context trace under ``plan.degraded-fallback``.

With a :class:`~repro.resilience.breaker.BreakerBoard` attached, an ASR
whose circuit breaker is **open** is filtered out the same way even
while nominally consistent (``plan.breaker-open`` in the trace): a
relation that keeps faulting gets a cooldown before queries trust it
again, and a half-open breaker admits exactly one probe query —
:meth:`Planner.execute` reports the probe's outcome back to the board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asr.asr import AccessSupportRelation
from repro.asr.manager import ASRManager
from repro.query.evaluator import EvaluationResult, QueryEvaluator
from repro.query.queries import Query
from repro.telemetry.tracing import maybe_span


@dataclass(frozen=True)
class Plan:
    """A chosen evaluation strategy for one query."""

    query: Query
    asr: AccessSupportRelation | None
    estimated_pages: float
    #: Applicable, consistent ASRs the breaker board vetoed (open
    #: breakers) while this plan was chosen.
    breaker_blocked: int = 0

    @property
    def supported(self) -> bool:
        return self.asr is not None

    def describe(self) -> str:
        if self.asr is None:
            return f"{self.query}: unsupported traversal/scan"
        return (
            f"{self.query}: via ASR[{self.asr.extension.value}, "
            f"dec={self.asr.decomposition}] (~{self.estimated_pages:.0f} pages)"
        )


class Planner:
    """Chooses among registered ASRs and the unsupported fallback.

    ``drift`` optionally attaches a
    :class:`~repro.telemetry.drift.DriftMonitor` (duck-typed: anything
    with ``observe_query``): :meth:`execute` then records every
    executed plan's measured page accesses against the cost model's
    prediction, feeding the live drift report.
    """

    def __init__(self, manager: ASRManager, drift=None, breakers=None) -> None:
        self.manager = manager
        self.drift = drift
        #: Optional :class:`~repro.resilience.breaker.BreakerBoard`
        #: (duck-typed: ``allow_query`` / ``record_success`` /
        #: ``record_failure``) filtering candidates and fed by probes.
        self.breakers = breakers

    def applicable(self, query: Query) -> list[AccessSupportRelation]:
        """All registered ASRs that may answer ``query`` per Eq. 35.

        Quarantined ASRs are excluded: reading possibly-torn trees could
        return wrong results, and wrong is worse than slow.
        """
        with self.manager.lock.read():
            return [
                asr
                for asr in self.manager.asrs
                if asr.path == query.path
                and asr.supports_query(query.i, query.j)
                and not asr.quarantined
            ]

    def quarantined_applicable(self, query: Query) -> list[AccessSupportRelation]:
        """ASRs that *would* answer ``query`` but are quarantined.

        Non-empty exactly when a plan is degraded: the query had support
        before the fault, and will have it again after recovery.
        """
        with self.manager.lock.read():
            return [
                asr
                for asr in self.manager.asrs
                if asr.path == query.path
                and asr.supports_query(query.i, query.j)
                and asr.quarantined
            ]

    def _count_degraded(self, query: Query, plan: Plan, context) -> None:
        """Trace a degraded decision (quarantine or an open breaker)."""
        if context is None:
            return
        if plan.breaker_blocked:
            context.count("plan.breaker-open", plan.breaker_blocked)
        if plan.asr is None and (
            plan.breaker_blocked or self.quarantined_applicable(query)
        ):
            context.count("plan.degraded-fallback")

    def estimate_supported_pages(
        self, query: Query, asr: AccessSupportRelation
    ) -> float:
        """A coarse page estimate for ranking candidate ASRs.

        Partitions whose border matches the query endpoint cost roughly
        their tree height plus a handful of leaf pages; partitions that
        must be scanned cost all their data pages.  This mirrors the
        structure of Eqs. 33–34 without needing the application profile.
        """
        path = asr.path
        first_column = path.column_of(query.i)
        last_column = path.column_of(query.j)
        pages = 0.0
        for partition in asr.partitions:
            a, b = partition.first_column, partition.last_column
            if b <= first_column or a >= last_column:
                continue
            endpoint_interior = (
                a < first_column if query.kind == "fw" else b > last_column
            )
            if endpoint_interior:
                pages += partition.page_count
            else:
                pages += partition.forward_tree.interior_height + 2
        return pages

    def plan(self, query: Query) -> Plan:
        """The cheapest plan for ``query`` among ASRs and the fallback."""
        with self.manager.lock.read():
            candidates = self.applicable(query)
            blocked = 0
            if self.breakers is not None and candidates:
                admitted = [
                    asr for asr in candidates if self.breakers.allow_query(asr)
                ]
                blocked = len(candidates) - len(admitted)
                candidates = admitted
            if not candidates:
                return Plan(query, None, float("inf"), breaker_blocked=blocked)
            best = min(
                candidates, key=lambda asr: self.estimate_supported_pages(query, asr)
            )
            return Plan(
                query,
                best,
                self.estimate_supported_pages(query, best),
                breaker_blocked=blocked,
            )

    def execute(
        self, query: Query, evaluator: QueryEvaluator, trace=None
    ) -> EvaluationResult:
        """Plan and evaluate in one step.

        The manager's read lock is held across both the plan decision
        and the evaluation, so a concurrent flush or recovery can never
        mutate a tree mid-probe (readers share; writers wait).

        ``trace`` records the plan decision as the ``plan`` phase and
        the evaluation as ``execute``; a degraded or breaker-vetoed
        decision marks the trace's outcome so tail capture retains it.
        """
        with self.manager.lock.read():
            with maybe_span(trace, "plan", "plan"):
                plan = self.plan(query)
            self._count_degraded(query, plan, evaluator.context)
            if trace is not None:
                if plan.breaker_blocked and plan.asr is None:
                    trace.mark("breaker-open")
                elif plan.asr is None and self.quarantined_applicable(query):
                    trace.mark("degraded")
            with maybe_span(trace, "evaluate", "execute"):
                if plan.asr is None:
                    result = evaluator.evaluate_unsupported(query)
                else:
                    try:
                        result = evaluator.evaluate_supported(query, plan.asr)
                    except Exception:
                        # A supported evaluation blowing up is breaker
                        # evidence (a half-open probe failing re-opens).
                        if self.breakers is not None:
                            self.breakers.record_failure(plan.asr)
                        raise
                    else:
                        if self.breakers is not None:
                            self.breakers.record_success(plan.asr)
        if self.drift is not None:
            self.drift.observe_query(query, plan.asr, result.total_pages)
        return result
