"""Cost-based planning: Eq. 35 dispatch with *measured* cost estimates.

The basic :class:`~repro.query.planner.Planner` only ranks the
applicable ASRs structurally.  The paper's Figure 8 shows why that is
not enough: a partial-range query against a *non-decomposed* full
extension degenerates to an exhaustive index scan that can be costlier
than no support at all.  The analytical cost model knows this — so this
planner closes the loop:

1. measure the live profile of the queried path
   (:func:`~repro.costmodel.profiling.profile_from_database`), cached
   and refreshed on demand;
2. price the unsupported evaluation (Eqs. 31–32) and every applicable
   ASR's supported evaluation (Eqs. 33–34, with the ASR's *actual*
   decomposition translated to type indices);
3. execute whichever is cheapest — possibly the plain traversal/scan
   even when an ASR applies.
"""

from __future__ import annotations

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.manager import ASRManager
from repro.costmodel.parameters import ApplicationProfile
from repro.costmodel.profiling import profile_from_database
from repro.costmodel.querycost import QueryCostModel
from repro.gom.paths import PathExpression
from repro.query.evaluator import EvaluationResult, QueryEvaluator
from repro.query.planner import Plan, Planner
from repro.query.queries import Query
from repro.telemetry.drift import type_decomposition


class CostBasedPlanner(Planner):
    """Ranks plans with the paper's analytical cost model.

    ``object_sizes`` maps type names to byte sizes for the measured
    profile (defaulting to ``default_size``); call :meth:`invalidate`
    after bulk changes so the cached profile is re-measured.
    """

    def __init__(
        self,
        manager: ASRManager,
        object_sizes: dict[str, int] | None = None,
        default_size: int = 100,
        drift=None,
        breakers=None,
    ) -> None:
        super().__init__(manager, drift=drift, breakers=breakers)
        self.object_sizes = object_sizes
        self.default_size = default_size
        self._profiles: dict[PathExpression, ApplicationProfile] = {}

    # ------------------------------------------------------------------

    def invalidate(self, path: PathExpression | None = None) -> None:
        """Drop cached profiles (all of them, or one path's)."""
        if path is None:
            self._profiles.clear()
        else:
            self._profiles.pop(path, None)

    def profile_for(self, path: PathExpression) -> ApplicationProfile:
        """The (cached) measured profile of ``path``."""
        if path not in self._profiles:
            self._profiles[path] = profile_from_database(
                self.manager.db, path, self.object_sizes, self.default_size
            )
        return self._profiles[path]

    # ------------------------------------------------------------------

    def _type_decomposition(self, asr: AccessSupportRelation) -> Decomposition:
        """The ASR's decomposition expressed over type indices (m = n)."""
        return type_decomposition(asr)

    def unsupported_cost(self, query: Query) -> float:
        """Model estimate for the traversal/scan evaluation (Eqs. 31-32)."""
        model = QueryCostModel(self.profile_for(query.path))
        return model.qnas(query.i, query.j, query.kind)

    def supported_cost(self, query: Query, asr: AccessSupportRelation) -> float:
        """Model estimate for evaluation through ``asr`` (Eqs. 33-34)."""
        model = QueryCostModel(self.profile_for(query.path))
        return model.qsup(
            asr.extension, query.i, query.j, query.kind, self._type_decomposition(asr)
        )

    def plan(self, query: Query) -> Plan:
        """The cheapest plan — including the deliberate fallback.

        Returns a plan with ``asr=None`` whenever the model prices the
        unsupported evaluation below every applicable ASR (the Figure 8
        situation).  As in the base planner, open circuit breakers veto
        otherwise-applicable candidates (``breaker_blocked`` counts the
        vetoes).
        """
        with self.manager.lock.read():
            fallback_cost = self.unsupported_cost(query)
            candidates = self.applicable(query)
            blocked = 0
            if self.breakers is not None and candidates:
                admitted = [
                    asr for asr in candidates if self.breakers.allow_query(asr)
                ]
                blocked = len(candidates) - len(admitted)
                candidates = admitted
            best_asr: AccessSupportRelation | None = None
            best_cost = fallback_cost
            for asr in candidates:
                cost = self.supported_cost(query, asr)
                if cost < best_cost:
                    best_asr, best_cost = asr, cost
            return Plan(query, best_asr, best_cost, breaker_blocked=blocked)

    def execute(self, query: Query, evaluator: QueryEvaluator) -> EvaluationResult:
        # Hold the manager's read side across plan *and* evaluation, as
        # the base planner does: a concurrent flush or recovery must not
        # mutate a tree between the cost decision and the probes.
        with self.manager.lock.read():
            plan = self.plan(query)
            context = evaluator.context
            if context is not None:
                # Count plan decisions in the context's trace: which arm
                # the cost model chose is as interesting as what it cost.
                chosen = "unsupported" if plan.asr is None else "supported"
                context.count(f"plan.{chosen}")
            self._count_degraded(query, plan, context)
            if plan.asr is None:
                result = evaluator.evaluate_unsupported(query)
            else:
                try:
                    result = evaluator.evaluate_supported(query, plan.asr)
                except Exception:
                    if self.breakers is not None:
                        self.breakers.record_failure(plan.asr)
                    raise
                else:
                    if self.breakers is not None:
                        self.breakers.record_success(plan.asr)
        if self.drift is not None:
            self.drift.observe_query(query, plan.asr, result.total_pages)
        return result


class RecordingPlanner(CostBasedPlanner):
    """A cost-based planner that also feeds the self-tuning loop.

    Every executed query is recorded into per-path
    :class:`~repro.asr.adaptive.WorkloadRecorder` instances, so an
    :class:`~repro.asr.adaptive.AdaptiveDesigner` can later re-tune the
    physical design from the *actual* query history — no manual
    ``record_query`` calls needed.  (Updates are counted by attaching
    the recorder to the object base, as usual.)
    """

    def __init__(
        self,
        manager: ASRManager,
        object_sizes: dict[str, int] | None = None,
        default_size: int = 100,
        record_updates: bool = True,
    ) -> None:
        super().__init__(manager, object_sizes, default_size)
        from repro.asr.adaptive import WorkloadRecorder

        self._recorder_class = WorkloadRecorder
        self._record_updates = record_updates
        self.recorders: dict[PathExpression, "WorkloadRecorder"] = {}

    def recorder_for(self, path: PathExpression):
        """The (lazily created) workload recorder of ``path``."""
        if path not in self.recorders:
            recorder = self._recorder_class(path)
            if self._record_updates:
                recorder.attach(self.manager.db)
            self.recorders[path] = recorder
        return self.recorders[path]

    def execute(self, query: Query, evaluator: QueryEvaluator) -> EvaluationResult:
        self.recorder_for(query.path).record_query(query.i, query.j, query.kind)
        return super().execute(query, evaluator)
