"""Execution of parsed select statements against an object base.

The executor binds range variables (database variables holding sets,
type extents, or dependent ranges over attribute paths), evaluates the
``where`` predicates, and produces the selected values.

When a :class:`~repro.query.planner.Planner` is supplied, the executor
recognizes the paper's flagship pattern — a predicate comparing a path
expression rooted at a range variable with a literal — and answers it
through a registered access support relation as a backward query,
instead of traversing from every binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable

from repro.errors import QueryError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.gom.types import NULL, SetType, ListType, TupleType
from repro.query.parser import (
    DottedPath,
    Literal,
    Operand,
    Predicate,
    SelectStatement,
    parse_select,
)
from repro.query.planner import Plan, Planner
from repro.query.queries import BackwardQuery, Query
from repro.query.evaluator import QueryEvaluator


@dataclass(frozen=True)
class PredicateAction:
    """One compiled step of the ASR fast path, in predicate order.

    ``kind`` is ``"supported"`` (evaluate ``query`` through
    ``plan.asr`` and intersect the candidates) or ``"degraded"`` (support
    exists but was unusable at compile time — keep the nested-loop
    filter and flag the strategy).  Supported actions are re-checked at
    execution time: quarantine or an open breaker demotes them to
    degraded without recompiling.
    """

    kind: str
    predicate: Predicate
    query: Query
    plan: Plan | None = None
    reason: str = "quarantined"


@dataclass(frozen=True)
class CompiledSelect:
    """A parsed statement plus its frozen plan decisions.

    The expensive part of :meth:`SelectExecutor.run` — recognizing
    indexable predicates and ranking ASRs for each — is done once at
    compile time; :meth:`SelectExecutor.run_compiled` replays the
    decisions against live data.  ``epoch`` records the ASR manager
    epoch the plans were made under (filled in by the caching layer);
    a compiled statement is only as fresh as that epoch.
    """

    statement: SelectStatement
    actions: tuple[PredicateAction, ...] = ()
    epoch: int | None = None

    @property
    def supported(self) -> bool:
        """Whether any predicate will be answered through an ASR."""
        return any(action.kind == "supported" for action in self.actions)


#: Strategy strings for the two ways a supported predicate degrades.
_DEGRADED_STRATEGIES = {
    "quarantined": "nested-loop traversal (degraded: ASR quarantined)",
    "breaker-open": "nested-loop traversal (degraded: breaker open)",
}


@dataclass
class ExecutionReport:
    """Result rows plus how they were obtained.

    ``page_reads`` and ``page_writes`` are the page accesses charged by
    any ASR-supported predicate evaluation; ``total_pages`` is their sum
    (the paper's cost measure).  Plain nested-loop binding reads the
    logical object graph only and charges nothing.
    """

    rows: list[tuple[Cell, ...]]
    strategy: str = "nested-loop traversal"
    page_reads: int = 0
    page_writes: int = 0

    @property
    def total_pages(self) -> int:
        return self.page_reads + self.page_writes

    def describe_pages(self) -> str:
        """Human-readable access summary (used by the CLI)."""
        return (
            f"{self.page_reads} page reads, {self.page_writes} page writes, "
            f"{self.total_pages} total"
        )

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class SelectExecutor:
    """Runs :class:`SelectStatement` objects over one object base."""

    def __init__(
        self,
        db: ObjectBase,
        planner: Planner | None = None,
        evaluator: QueryEvaluator | None = None,
        context=None,
    ) -> None:
        self.db = db
        self.planner = planner
        if evaluator is None:
            evaluator = QueryEvaluator(db, context=context)
        self.evaluator = evaluator

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, statement: SelectStatement | str) -> ExecutionReport:
        if isinstance(statement, str):
            statement = parse_select(statement)
        if self.planner is not None:
            # Hold the manager's read side across planning, binding *and*
            # filtering so a concurrent maintenance write cannot swap ASR
            # state between the plan decision and the tree probes (the
            # read side is reentrant, so nested plan calls are fine).
            with self.planner.manager.lock.read():
                return self.run_compiled(self.compile(statement))
        return self.run_compiled(self.compile(statement))

    def compile(self, statement: SelectStatement | str) -> CompiledSelect:
        """Freeze the plan decisions for ``statement`` without running it.

        Recognizes the paper's flagship pattern — predicates comparing a
        path expression rooted at the first range variable with a
        literal — and plans each through the attached planner.  Plan
        decisions are traced (``plan.supported`` / ``plan.unsupported``)
        *here*, so replaying the compiled statement via
        :meth:`run_compiled` provably does no planning work.
        """
        if isinstance(statement, str):
            statement = parse_select(statement)
        actions: list[PredicateAction] = []
        if self.planner is not None and statement.predicates:
            first = statement.ranges[0]
            context = self.evaluator.context
            for predicate in statement.predicates:
                rooted = self._rooted_literal_predicate(predicate, first.variable)
                if rooted is None:
                    continue
                attributes, literal, op = rooted
                path = self._try_path(first, attributes)
                if path is None:
                    continue
                query = self._indexable_query(path, literal, op)
                if query is None:
                    continue
                plan = self.planner.plan(query)
                if context is not None:
                    chosen = "unsupported" if plan.asr is None else "supported"
                    context.count(f"plan.{chosen}")
                if plan.asr is None:
                    if self.planner.quarantined_applicable(query):
                        # Support exists but is quarantined: keep the
                        # nested-loop filter (correct, just slower) and
                        # say so in the strategy string / trace.
                        actions.append(
                            PredicateAction(
                                "degraded", predicate, query, plan, "quarantined"
                            )
                        )
                    elif plan.breaker_blocked:
                        actions.append(
                            PredicateAction(
                                "degraded", predicate, query, plan, "breaker-open"
                            )
                        )
                    continue
                actions.append(PredicateAction("supported", predicate, query, plan))
        return CompiledSelect(statement, tuple(actions))

    def run_compiled(self, compiled: CompiledSelect) -> ExecutionReport:
        """Execute a previously compiled statement against live data.

        Supported actions are re-validated cheaply: an ASR that was
        quarantined or breaker-vetoed since compile time degrades that
        predicate to the nested-loop filter instead of returning wrong
        rows, and supported evaluations feed the breaker board exactly
        as freshly planned ones do.
        """
        if self.planner is not None:
            with self.planner.manager.lock.read():
                return self._run_actions(compiled)
        return self._run_actions(compiled)

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------

    def _run_actions(self, compiled: CompiledSelect) -> ExecutionReport:
        statement = compiled.statement
        strategy = "nested-loop traversal"
        reads = writes = 0
        first = statement.ranges[0]
        candidates = set(self._range_members(first, {}))
        asr_filtered: set[str] = set()
        context = self.evaluator.context
        breakers = self.planner.breakers if self.planner is not None else None
        for action in compiled.actions:
            reason = action.reason
            if action.kind == "supported":
                asr = action.plan.asr
                if asr.quarantined:
                    reason = "quarantined"
                elif breakers is not None and not breakers.allow_query(asr):
                    reason = "breaker-open"
                else:
                    try:
                        result = self.evaluator.evaluate_supported(action.query, asr)
                    except Exception:
                        if breakers is not None:
                            breakers.record_failure(asr)
                        raise
                    if breakers is not None:
                        breakers.record_success(asr)
                    candidates &= result.cells
                    reads += result.page_reads
                    writes += result.page_writes
                    strategy = f"asr-backward via {asr.extension.value}"
                    asr_filtered.add(str(action.predicate))
                    continue
            strategy = _DEGRADED_STRATEGIES[reason]
            if context is not None:
                context.count("query.degraded-fallback")
        bindings_list: list[dict[str, Cell]] = []
        for candidate in sorted(candidates, key=repr):
            self._extend_bindings(
                statement, 1, {first.variable: candidate}, bindings_list, asr_filtered
            )
        rows: list[tuple[Cell, ...]] = []
        seen: set[tuple[Cell, ...]] = set()
        for bindings in bindings_list:
            value_sets = [
                sorted(self._resolve(target, bindings), key=repr)
                for target in statement.targets
            ]
            if any(not values for values in value_sets):
                continue
            for combo in product(*value_sets):
                if combo not in seen:
                    seen.add(combo)
                    rows.append(combo)
        return ExecutionReport(rows, strategy, reads, writes)

    def _extend_bindings(
        self,
        statement: SelectStatement,
        range_index: int,
        bindings: dict[str, Cell],
        output: list[dict[str, Cell]],
        asr_filtered: set[str],
    ) -> None:
        if range_index == len(statement.ranges):
            if all(
                str(predicate) in asr_filtered or self._holds(predicate, bindings)
                for predicate in statement.predicates
            ):
                output.append(dict(bindings))
            return
        decl = statement.ranges[range_index]
        for member in sorted(self._range_members(decl, bindings), key=repr):
            bindings[decl.variable] = member
            self._extend_bindings(
                statement, range_index + 1, bindings, output, asr_filtered
            )
            del bindings[decl.variable]

    def _range_members(self, decl, bindings: dict[str, Cell]) -> Iterable[Cell]:
        if decl.is_extent:
            return self.db.extent(decl.source.variable)
        if decl.source.variable in bindings:
            return self._resolve(decl.source, bindings)
        # A database variable: a set/list yields members, anything else a
        # singleton binding; attribute hops may follow.
        root = self.db.get_var(decl.source.variable)
        cells = self._follow({root}, decl.source.attributes)
        return self._flatten_collections(cells)

    def _flatten_collections(self, cells: Iterable[Cell]) -> set[Cell]:
        result: set[Cell] = set()
        for cell in cells:
            if isinstance(cell, OID) and isinstance(
                self.db.schema.lookup(self.db.type_of(cell)), (SetType, ListType)
            ):
                result.update(self.db.members(cell))
            else:
                result.add(cell)
        return result

    # ------------------------------------------------------------------
    # evaluation of operands and predicates
    # ------------------------------------------------------------------

    def _resolve(self, operand: Operand, bindings: dict[str, Cell]) -> set[Cell]:
        if isinstance(operand, Literal):
            return {operand.value}
        if operand.variable not in bindings:
            raise QueryError(f"unbound variable {operand.variable!r}")
        return self._follow({bindings[operand.variable]}, operand.attributes)

    def _follow(self, cells: set[Cell], attributes: tuple[str, ...]) -> set[Cell]:
        current = set(cells)
        for attribute in attributes:
            next_cells: set[Cell] = set()
            for cell in current:
                if not isinstance(cell, OID):
                    continue
                type_name = self.db.type_of(cell)
                gom_type = self.db.schema.lookup(type_name)
                if isinstance(gom_type, (SetType, ListType)):
                    # Implicit flattening before the hop.
                    for member in self.db.members(cell):
                        next_cells.update(self._follow({member}, (attribute,)))
                    continue
                if not isinstance(gom_type, TupleType):
                    continue
                if attribute not in self.db.schema.attributes_of(type_name):
                    raise QueryError(f"{type_name!r} has no attribute {attribute!r}")
                value = self.db.attr(cell, attribute)
                if value is NULL:
                    continue
                if isinstance(value, OID) and isinstance(
                    self.db.schema.lookup(self.db.type_of(value)), (SetType, ListType)
                ):
                    next_cells.update(self.db.members(value))
                else:
                    next_cells.add(value)
            current = next_cells
        return current

    def _holds(self, predicate: Predicate, bindings: dict[str, Cell]) -> bool:
        left = self._resolve(predicate.left, bindings)
        right = self._resolve(predicate.right, bindings)
        if predicate.op in ("=", "in"):
            # '=' on multi-valued path expressions has existential
            # semantics, as in the paper's Query 1; 'in' is the explicit
            # membership form.
            return bool(left & right)
        # Order comparisons are existential too: some reachable value
        # satisfies the bound.  Cells are compared through the total
        # order the storage layer uses for its value clustering.
        from repro.asr.asr import cell_key

        comparators = {
            "<": lambda a, b: cell_key(a) < cell_key(b),
            "<=": lambda a, b: cell_key(a) <= cell_key(b),
            ">": lambda a, b: cell_key(a) > cell_key(b),
            ">=": lambda a, b: cell_key(a) >= cell_key(b),
        }
        compare = comparators[predicate.op]
        return any(compare(a, b) for a in left for b in right)

    # ------------------------------------------------------------------
    # ASR fast-path helpers
    # ------------------------------------------------------------------

    _MIRRORED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "in": "in"}

    @classmethod
    def _rooted_literal_predicate(
        cls, predicate: Predicate, variable: str
    ) -> tuple[tuple[str, ...], Literal, str] | None:
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, Literal) and isinstance(right, DottedPath):
            left, right = right, left
            op = cls._MIRRORED_OPS[op]
        if not isinstance(left, DottedPath) or not isinstance(right, Literal):
            return None
        if left.variable != variable or not left.attributes:
            return None
        return left.attributes, right, op

    @staticmethod
    def _indexable_query(path, literal: Literal, op: str):
        """The backward/range query answering ``path op literal``."""
        from repro.asr.asr import BOTTOM, TOP
        from repro.query.queries import ValueRangeQuery

        if op in ("=", "in"):
            return BackwardQuery(path, 0, path.n, target=literal.value)
        if not path.terminal_is_atomic:
            return None
        # One-sided scans are unbounded on the open side: BOTTOM/TOP sort
        # below/above every real cell, so no stored value — of any rank —
        # can escape the scan.  (Finite per-rank sentinels used to live
        # here and silently missed values sorting above them.)
        try:
            if op == "<":
                return ValueRangeQuery(path, 0, path.n, lo=BOTTOM, hi=literal.value)
            if op == ">=":
                return ValueRangeQuery(path, 0, path.n, lo=literal.value, hi=TOP)
        except Exception:
            return None
        # '<=' and '>' need inclusive/exclusive bounds the half-open scan
        # cannot express exactly for arbitrary value domains; fall back to
        # the nested-loop filter for those.
        return None

    def _try_path(self, decl, attributes: tuple[str, ...]) -> PathExpression | None:
        element_type = self._element_type(decl)
        if element_type is None:
            return None
        try:
            return PathExpression(self.db.schema, element_type, attributes)
        except Exception:
            return None

    def _element_type(self, decl) -> str | None:
        if decl.is_extent:
            return decl.source.variable
        if decl.source.attributes:
            return None
        declared = self.db.var_type(decl.source.variable)
        if declared is None:
            return None
        gom_type = self.db.schema.lookup(declared)
        if isinstance(gom_type, (SetType, ListType)):
            return gom_type.element_type
        return declared
