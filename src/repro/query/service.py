"""The query service: text in, rows out, plans cached by epoch.

One :class:`QueryService` per daemon wires the whole front-door
pipeline together::

    text ─ normalize ─ (cache hit? ───────────────┐
             │                                    │
             └ parse_select → validate_select →   │
               SelectExecutor.compile → cache ────┤
                                                  ▼
                               SelectExecutor.run_compiled

Everything from the epoch read to the last tree probe happens under one
hold of the ASR manager's read lock, so the ``(text, epoch)`` cache key
can never pair a plan with trees from a different epoch.  Parse and
validation failures raise :class:`~repro.errors.ParseError` /
:class:`~repro.errors.QueryError` (counted as ``query.errors`` by
kind); callers map them to HTTP 400 with the exception text as the
payload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.errors import ParseError, QueryError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID
from repro.gom.types import NULL
from repro.query.cache import CompiledPlanCache, normalize_query
from repro.query.evaluator import QueryEvaluator
from repro.query.executor import ExecutionReport, SelectExecutor
from repro.query.parser import SelectStatement, parse_select
from repro.query.planner import Planner
from repro.query.validate import validate_select
from repro.telemetry.tracing import maybe_span


def jsonable_cell(cell):
    """A JSON-serializable rendering of one result cell."""
    if cell is NULL:
        return None
    if isinstance(cell, OID):
        return repr(cell)
    return cell


@dataclass
class QueryOutcome:
    """What one service call produced, plus how it got there."""

    report: ExecutionReport
    statement: SelectStatement
    cached: bool
    epoch: int
    normalized: str

    def payload(self) -> dict:
        """The HTTP 200 response body for this outcome."""
        return {
            "rows": [
                [jsonable_cell(cell) for cell in row] for row in self.report.rows
            ],
            "row_count": len(self.report.rows),
            "strategy": self.report.strategy,
            "page_reads": self.report.page_reads,
            "page_writes": self.report.page_writes,
            "total_pages": self.report.total_pages,
            "cached": self.cached,
            "epoch": self.epoch,
        }


class QueryService:
    """Executes query texts over one object base, caching compiled plans.

    ``planner`` is shared across calls (it holds the cost model's
    profile cache); per-call state lives in the
    :class:`~repro.context.ExecutionContext` handed to :meth:`execute`,
    so concurrent HTTP requests may call into one service freely.
    """

    def __init__(
        self,
        db: ObjectBase,
        planner: Planner,
        store=None,
        cache_size: int = 128,
        registry=None,
    ) -> None:
        self.db = db
        self.planner = planner
        self.store = store
        self.registry = registry
        self.cache = CompiledPlanCache(cache_size, registry=registry)

    @property
    def manager(self):
        return self.planner.manager

    def _count_error(self, kind: str) -> None:
        if self.registry is not None:
            self.registry.inc("query.errors", kind=kind)

    def execute(self, text: str, context=None, trace=None) -> QueryOutcome:
        """Run ``text`` end to end; raises ParseError/QueryError on bad input.

        ``trace`` (a :class:`~repro.telemetry.tracing.Trace`) receives
        the phase decomposition: the cache probe as ``cache-hit``,
        parse + validate + compile as ``plan``, and the compiled run as
        ``execute`` — disjoint segments, so they sum toward the reported
        latency (the read-lock wait is attributed separately by the
        :class:`~repro.concurrency.RWLock` hook).
        """
        started = time.perf_counter()
        normalized = normalize_query(text)
        if trace is not None:
            trace.annotate(query=normalized)
        evaluator = QueryEvaluator(self.db, self.store, context=context)
        executor = SelectExecutor(self.db, self.planner, evaluator=evaluator)
        manager = self.manager
        # One read hold across epoch read, cache probe, (re)compile, and
        # execution: a maintenance write cannot slip a new epoch between
        # the key we cache under and the trees we probe.
        with manager.lock.read():
            epoch = manager.epoch
            with maybe_span(trace, "cache.probe", "cache-hit"):
                compiled = self.cache.get(normalized, epoch)
            cached = compiled is not None
            if compiled is None:
                with maybe_span(trace, "parse+validate+compile", "plan"):
                    try:
                        statement = parse_select(normalized)
                    except ParseError:
                        self._count_error("parse")
                        raise
                    try:
                        validate_select(statement, self.db)
                    except QueryError:
                        self._count_error("validate")
                        raise
                    compiled = replace(executor.compile(statement), epoch=epoch)
                    self.cache.put(normalized, epoch, compiled)
            try:
                with maybe_span(trace, "run_compiled", "execute"):
                    report = executor.run_compiled(compiled)
            except Exception:
                self._count_error("execute")
                raise
        if trace is not None:
            trace.annotate(
                strategy=report.strategy,
                cached=cached,
                epoch=epoch,
                pages=report.total_pages,
            )
            if "degraded" in report.strategy:
                trace.mark(
                    "breaker-open"
                    if "breaker open" in report.strategy
                    else "degraded"
                )
        if self.registry is not None:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.registry.observe(
                "query.latency_ms",
                elapsed_ms,
                exemplar=None if trace is None else trace.trace_id,
            )
        return QueryOutcome(report, compiled.statement, cached, epoch, normalized)
