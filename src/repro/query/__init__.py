"""Query processing over object bases with access support relations.

Implements the two representative query shapes of section 5.1 —
forward queries ``Q_{i,j}(fw)`` and backward queries ``Q_{i,j}(bw)`` —
with two evaluation strategies:

* **unsupported** (section 5.6): pointer-chasing through the clustered
  object representation (forward) or exhaustive extent scanning
  (backward), charging object-page reads;
* **supported** (section 5.7): chained lookups through the decomposed
  access support relation's B+ trees, falling back to partition scans
  when the query's endpoint is not on a partition border.

The :mod:`repro.query.planner` applies the applicability rules of Eq. 35
to pick a strategy, and :mod:`repro.query.parser` offers the small
SQL-like surface syntax used in the paper's examples (Queries 1–3).
"""

from repro.query.queries import BackwardQuery, ForwardQuery, Query, ValueRangeQuery
from repro.query.evaluator import EvaluationResult, QueryEvaluator
from repro.query.planner import Plan, Planner
from repro.query.costplanner import CostBasedPlanner, RecordingPlanner
from repro.query.parser import parse_select, SelectStatement
from repro.query.executor import CompiledSelect, ExecutionReport, SelectExecutor
from repro.query.validate import validate_select
from repro.query.cache import CompiledPlanCache, normalize_query
from repro.query.service import QueryOutcome, QueryService

__all__ = [
    "Query",
    "ForwardQuery",
    "BackwardQuery",
    "ValueRangeQuery",
    "QueryEvaluator",
    "EvaluationResult",
    "Planner",
    "CostBasedPlanner",
    "RecordingPlanner",
    "Plan",
    "parse_select",
    "SelectStatement",
    "SelectExecutor",
    "CompiledSelect",
    "ExecutionReport",
    "validate_select",
    "CompiledPlanCache",
    "normalize_query",
    "QueryOutcome",
    "QueryService",
]
