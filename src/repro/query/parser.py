"""A small SQL-like surface syntax for the paper's example queries.

Supports exactly the shapes used in section 2 of the paper::

    select r.Name
    from r in OurRobots
    where r.Arm.MountedTool.ManufacturedBy.Location = "Utopia"

    select d.Name
    from d in Mercedes, b in d.Manufactures.Composition
    where b.Name = "Door"

    select d.Manufactures.Composition.Name
    from d in Mercedes
    where d.Name = "Auto"

Grammar (case-insensitive keywords)::

    statement  := "select" targets "from" ranges ["where" predicates]
    targets    := target ("," target)*
    target     := IDENT ("." IDENT)*
    ranges     := range ("," range)*
    range      := IDENT "in" source
    source     := IDENT ("." IDENT)*          -- db variable, or var.path
                | "extent" "(" IDENT ")"      -- a type extent
    predicates := predicate ("and" predicate)*
    predicate  := operand op operand
    op         := "=" | "in" | "<" | "<=" | ">" | ">="

Operands are dotted identifiers (range variable, optionally followed by
an attribute path) or literals (double-quoted strings with ``\"`` and
``\\`` escapes, integers, decimals).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct><=|>=|[(),.=<>])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape_string(body: str) -> str:
    return _ESCAPE_RE.sub(r"\1", body)


def _escape_string(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


@dataclass(frozen=True)
class DottedPath:
    """A range variable followed by zero or more attribute hops."""

    variable: str
    attributes: tuple[str, ...] = ()

    def __str__(self) -> str:
        return ".".join((self.variable,) + self.attributes)


@dataclass(frozen=True)
class Literal:
    value: Union[str, int, float]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{_escape_string(self.value)}"'
        return str(self.value)


Operand = Union[DottedPath, Literal]


@dataclass(frozen=True)
class RangeDecl:
    """``variable in source`` — a binding of the from clause.

    ``source`` is a :class:`DottedPath` over either a database variable
    (``Mercedes``) or an earlier range variable (``d.Manufactures…``), or
    the pseudo-call ``extent(TypeName)`` encoded with
    ``variable == "extent"``.
    """

    variable: str
    source: DottedPath
    is_extent: bool = False


@dataclass(frozen=True)
class Predicate:
    """``left op right`` with ``op`` ∈ {=, in, <, <=, >, >=}."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class SelectStatement:
    targets: tuple[DottedPath, ...]
    ranges: tuple[RangeDecl, ...]
    predicates: tuple[Predicate, ...] = ()

    def __str__(self) -> str:
        parts = ["select " + ", ".join(map(str, self.targets))]
        range_texts = []
        for decl in self.ranges:
            source = (
                f"extent({decl.source.variable})" if decl.is_extent else str(decl.source)
            )
            range_texts.append(f"{decl.variable} in {source}")
        parts.append("from " + ", ".join(range_texts))
        if self.predicates:
            parts.append("where " + " and ".join(map(str, self.predicates)))
        return "\n".join(parts)


class _Tokens:
    def __init__(self, text: str) -> None:
        self.tokens: list[tuple[str, str]] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                if text[position] == '"':
                    raise ParseError(f"unterminated string literal at {position}")
                raise ParseError(f"unexpected character {text[position]!r} at {position}")
            position = match.end()
            kind = match.lastgroup or ""
            if kind != "ws":
                self.tokens.append((kind, match.group()))
        self.index = 0

    def peek(self) -> tuple[str, str] | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self.index += 1
        return token

    def expect_ident(self, *keywords: str) -> str:
        kind, text = self.next()
        if kind != "ident":
            raise ParseError(f"expected identifier, got {text!r}")
        if keywords and text.lower() not in keywords:
            raise ParseError(f"expected {' or '.join(keywords)}, got {text!r}")
        return text

    def expect_punct(self, punct: str) -> None:
        kind, text = self.next()
        if kind != "punct" or text != punct:
            raise ParseError(f"expected {punct!r}, got {text!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token[0] == "ident" and token[1].lower() == keyword


def parse_select(text: str) -> SelectStatement:
    """Parse a select statement; raises :class:`ParseError` on bad input."""
    tokens = _Tokens(text)
    tokens.expect_ident("select")
    targets = [_parse_dotted(tokens)]
    while tokens.peek() == ("punct", ","):
        tokens.next()
        targets.append(_parse_dotted(tokens))
    tokens.expect_ident("from")
    ranges = [_parse_range(tokens)]
    while tokens.peek() == ("punct", ","):
        tokens.next()
        ranges.append(_parse_range(tokens))
    predicates: list[Predicate] = []
    if tokens.at_keyword("where"):
        tokens.next()
        predicates.append(_parse_predicate(tokens))
        while tokens.at_keyword("and"):
            tokens.next()
            predicates.append(_parse_predicate(tokens))
    trailing = tokens.peek()
    if trailing is not None:
        raise ParseError(f"trailing input starting at {trailing[1]!r}")
    _check_scopes(targets, ranges, predicates)
    return SelectStatement(tuple(targets), tuple(ranges), tuple(predicates))


def _parse_dotted(tokens: _Tokens) -> DottedPath:
    head = tokens.expect_ident()
    attributes: list[str] = []
    while tokens.peek() == ("punct", "."):
        tokens.next()
        attributes.append(tokens.expect_ident())
    return DottedPath(head, tuple(attributes))


def _parse_range(tokens: _Tokens) -> RangeDecl:
    variable = tokens.expect_ident()
    tokens.expect_ident("in")
    kind, text = tokens.next()
    if kind == "ident" and text.lower() == "extent":
        tokens.expect_punct("(")
        type_name = tokens.expect_ident()
        tokens.expect_punct(")")
        return RangeDecl(variable, DottedPath(type_name), is_extent=True)
    if kind != "ident":
        raise ParseError(f"expected range source, got {text!r}")
    attributes: list[str] = []
    while tokens.peek() == ("punct", "."):
        tokens.next()
        attributes.append(tokens.expect_ident())
    return RangeDecl(variable, DottedPath(text, tuple(attributes)))


def _parse_operand(tokens: _Tokens) -> Operand:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected operand")
    kind, text = token
    if kind == "string":
        tokens.next()
        return Literal(_unescape_string(text[1:-1]))
    if kind == "number":
        tokens.next()
        return Literal(float(text) if "." in text else int(text))
    return _parse_dotted(tokens)


_COMPARISONS = ("=", "<", "<=", ">", ">=")


def _parse_predicate(tokens: _Tokens) -> Predicate:
    left = _parse_operand(tokens)
    token = tokens.next()
    if token[0] == "punct" and token[1] in _COMPARISONS:
        op = token[1]
    elif token[0] == "ident" and token[1].lower() == "in":
        op = "in"
    else:
        raise ParseError(
            f"expected one of {', '.join(_COMPARISONS)} or 'in', got {token[1]!r}"
        )
    right = _parse_operand(tokens)
    return Predicate(left, op, right)


def _check_scopes(targets, ranges, predicates) -> None:
    bound = set()
    for decl in ranges:
        if not decl.is_extent and decl.source.attributes:
            if decl.source.variable not in bound:
                raise ParseError(
                    f"range source {decl.source} references unbound variable "
                    f"{decl.source.variable!r}"
                )
        if decl.variable in bound:
            raise ParseError(f"duplicate range variable {decl.variable!r}")
        bound.add(decl.variable)
    for target in targets:
        if target.variable not in bound:
            raise ParseError(f"select target references unbound {target.variable!r}")
    for predicate in predicates:
        for operand in (predicate.left, predicate.right):
            if isinstance(operand, DottedPath) and operand.variable not in bound:
                raise ParseError(
                    f"predicate references unbound variable {operand.variable!r}"
                )
