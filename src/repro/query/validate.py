"""Static validation of parsed select statements against a GOM schema.

:func:`parse_select` only checks syntax and variable *binding*; this
module checks *meaning* before any planning happens, in the spirit of
conceptual-query validation: every range source must exist, every
attribute hop must be declared on the (tuple) type it is applied to,
and literals compared against an atomic-typed path must carry a value
that atomic type accepts.  Failures raise :class:`~repro.errors.QueryError`
with messages precise enough to return verbatim in an HTTP 400 body.

Validation is best-effort where the schema is: a database variable with
no declared type makes its subtree opaque, and hops from an opaque type
are accepted (the executor resolves them dynamically, yielding nothing
for genuinely absent attributes rather than wrong answers).
"""

from __future__ import annotations

from repro.errors import ObjectBaseError, QueryError, SchemaError
from repro.gom.database import ObjectBase
from repro.gom.types import AtomicType, GomType, ListType, SetType, TupleType
from repro.query.parser import DottedPath, Literal, SelectStatement


def validate_select(statement: SelectStatement, db: ObjectBase) -> None:
    """Raise :class:`QueryError` unless ``statement`` is well-typed.

    Checks, in order: range sources (unknown extents / database
    variables), attribute hops in dependent ranges, select targets, and
    predicate operands, including literal-vs-atomic-type agreement.
    """
    schema = db.schema
    #: Element type of each range variable, or None when opaque.
    element_types: dict[str, str | None] = {}
    for decl in statement.ranges:
        if decl.is_extent:
            type_name = decl.source.variable
            try:
                schema.lookup(type_name)
            except SchemaError:
                raise QueryError(
                    f"unknown type {type_name!r} in extent({type_name})"
                ) from None
            element_types[decl.variable] = type_name
        elif decl.source.variable in element_types:
            # Dependent range: walk the attribute path from the root
            # variable's element type.
            root = element_types[decl.source.variable]
            terminal = _walk(schema, root, decl.source)
            element_types[decl.variable] = _element_name(schema, terminal)
        else:
            try:
                db.get_var(decl.source.variable)
            except ObjectBaseError:
                raise QueryError(
                    f"unknown range source {decl.source.variable!r} "
                    "(not a database variable)"
                ) from None
            declared = db.var_type(decl.source.variable)
            terminal = _walk(schema, declared, decl.source)
            element_types[decl.variable] = _element_name(schema, terminal)
    for target in statement.targets:
        _walk(schema, element_types[target.variable], target)
    for predicate in statement.predicates:
        terminals = []
        for operand in (predicate.left, predicate.right):
            if isinstance(operand, DottedPath):
                terminals.append(
                    _walk(schema, element_types[operand.variable], operand)
                )
            else:
                terminals.append(operand)
        for side, other in ((0, 1), (1, 0)):
            if isinstance(terminals[side], Literal):
                _check_literal(terminals[side], terminals[other], predicate)


def _element_name(schema, gom_type: GomType | None) -> str | None:
    """Collapse a walked terminal to the type name a range variable binds.

    Collections yield their element type (the executor flattens them the
    same way); unknown/opaque stays None.
    """
    if gom_type is None:
        return None
    if isinstance(gom_type, (SetType, ListType)):
        return gom_type.element_type
    return gom_type.name


def _walk(schema, type_name: str | None, path: DottedPath) -> GomType | None:
    """Check every hop of ``path`` from ``type_name``; return the terminal.

    Returns None as soon as the walk enters opaque territory (an
    undeclared variable type, or a forward-referenced type the schema
    has not registered).
    """
    if type_name is None:
        return None
    try:
        current: GomType | None = schema.lookup(type_name)
    except SchemaError:
        return None
    for attribute in path.attributes:
        if current is None:
            return None
        # Hops flatten collections implicitly, as the executor does.
        while isinstance(current, (SetType, ListType)):
            try:
                current = schema.lookup(current.element_type)
            except SchemaError:
                return None
        if isinstance(current, AtomicType):
            raise QueryError(
                f"in {path}: atomic type {current.name!r} has no "
                f"attribute {attribute!r}"
            )
        if not isinstance(current, TupleType):
            return None
        attrs = schema.attributes_of(current.name)
        if attribute not in attrs:
            raise QueryError(
                f"in {path}: type {current.name!r} has no attribute "
                f"{attribute!r} (known: {', '.join(sorted(attrs))})"
            )
        try:
            current = schema.lookup(attrs[attribute])
        except SchemaError:
            return None
    return current


def _check_literal(literal: Literal, other, predicate) -> None:
    """A literal compared against an atomic-typed path must fit its type."""
    if isinstance(other, Literal) or other is None:
        return
    terminal = other
    if isinstance(terminal, (SetType, ListType)):
        # 'lit in x.Path' compares against the collection's elements;
        # leave member-level agreement to the executor's existential
        # semantics rather than over-rejecting here.
        return
    if isinstance(terminal, AtomicType):
        if not terminal.accepts(literal.value):
            raise QueryError(
                f"in predicate {predicate}: literal {literal} is not a "
                f"{terminal.name}"
            )
        return
    raise QueryError(
        f"in predicate {predicate}: literal {literal} compared against "
        f"object-valued path of type {terminal.name!r}"
    )
