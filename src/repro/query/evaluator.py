"""Query evaluation with page-access measurement.

Two strategies per query (section 5.6 / 5.7):

**Unsupported** evaluation works on the object representation only.
Forward queries chase references level by level, reading each referenced
object's page; backward queries have no reverse pointers to follow, so
they exhaustively scan the extent of ``t_i`` and traverse forward from
every candidate (the simulator's page charges mirror the terms of
Eqs. 31–32 — ``op_i`` for the scan, one page per distinct object touched
at the intermediate levels).

**Supported** evaluation chains through the partitions of an access
support relation: a lookup per frontier value in partitions whose border
matches the query endpoint, and an exhaustive partition scan when the
endpoint falls strictly inside a partition — the same case split as the
three sums of Eq. 33/34.

Both strategies return the *same* result sets (property-tested); only
their page-access profiles differ.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.asr.asr import AccessSupportRelation
from repro.context import ExecutionContext
from repro.errors import QueryError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.types import NULL
from repro.query.queries import BackwardQuery, ForwardQuery, Query, ValueRangeQuery
from repro.storage.objectstore import ClusteredObjectStore
from repro.storage.stats import AccessStats, BufferScope
from repro.telemetry.tracing import current_trace, maybe_span


@dataclass
class EvaluationResult:
    """The answer set of a query plus its measured page accesses."""

    cells: set[Cell]
    page_reads: int = 0
    page_writes: int = 0
    strategy: str = "unsupported"
    detail: dict[str, int] = field(default_factory=dict)

    @property
    def total_pages(self) -> int:
        return self.page_reads + self.page_writes


class QueryEvaluator:
    """Evaluates forward/backward queries over one object base.

    Parameters
    ----------
    db:
        The object base.
    store:
        Optional clustered object store; when given, unsupported
        evaluation charges object-page accesses to it.  Without a store,
        results are still exact but page counts are zero.
    context:
        Optional :class:`~repro.context.ExecutionContext`.  When given,
        the evaluator charges the context's stats, draws per-query
        buffer scopes from the context's policy, and records one traced
        operation span per evaluated query.
    """

    def __init__(
        self,
        db: ObjectBase,
        store: ClusteredObjectStore | None = None,
        context: ExecutionContext | None = None,
    ):
        self.db = db
        self.store = store
        self.context = context
        self.stats = context.stats if context is not None else AccessStats()

    @contextmanager
    def _measured(self, name: str):
        """One per-query buffer scope, traced when a context is attached."""
        if self.context is not None:
            with self.context.operation(name) as buffer:
                yield buffer
        else:
            with BufferScope(self.stats) as buffer:
                yield buffer

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def evaluate(
        self, query: Query, asr: AccessSupportRelation | None = None
    ) -> EvaluationResult:
        """Evaluate with the ASR when it applies (Eq. 35), else unsupported.

        A quarantined ASR (crash recovery pending, trees possibly torn)
        is treated as absent: the query degrades to the unsupported
        strategy — correct answer, worse page profile — and the fallback
        is counted in the context trace under ``query.degraded-fallback``.
        """
        if asr is not None and asr.supports_query(query.i, query.j):
            if asr.quarantined:
                if self.context is not None:
                    self.context.count("query.degraded-fallback")
                result = self.evaluate_unsupported(query)
                result.strategy = "unsupported (degraded: ASR quarantined)"
                return result
            return self.evaluate_supported(query, asr)
        return self.evaluate_unsupported(query)

    def evaluate_unsupported(self, query: Query) -> EvaluationResult:
        before = self.stats.snapshot()
        with self._measured(f"query.unsupported.{query.kind}") as buffer:
            if isinstance(query, ForwardQuery):
                cells = self._forward_traverse(query, buffer)
            elif isinstance(query, ValueRangeQuery):
                cells = self._range_scan(query, buffer)
            elif isinstance(query, BackwardQuery):
                cells = self._backward_scan(query, buffer)
            else:
                raise QueryError(f"unknown query shape {query!r}")
        delta = self.stats.delta_since(before)
        return EvaluationResult(
            cells,
            delta.page_reads,
            delta.page_writes,
            "unsupported",
            dict(delta.by_category),
        )

    def evaluate_supported(
        self, query: Query, asr: AccessSupportRelation
    ) -> EvaluationResult:
        if asr.path != query.path:
            raise QueryError("the ASR does not index this query's path")
        if not asr.supports_query(query.i, query.j):
            raise QueryError(
                f"extension {asr.extension.value!r} cannot evaluate "
                f"Q{query.i},{query.j} (Eq. 35)"
            )
        if asr.quarantined:
            raise QueryError(
                f"ASR {asr.path} [{asr.extension.value}] is quarantined after "
                "a crash/fault; recover it or use evaluate() to fall back"
            )
        before = self.stats.snapshot()
        # A nested annotation span (no phase — the planner already books
        # this time under `execute`), naming the ASR that served the
        # lookup; resolved from the thread-local active trace because
        # evaluation may run on an executor thread the loop handed off to.
        with maybe_span(
            current_trace(),
            f"asr.lookup[{asr.extension.value}:{asr.decomposition}]",
        ):
            with self._measured(f"query.supported.{query.kind}") as buffer:
                if isinstance(query, ForwardQuery):
                    cells = self._supported_forward(query, asr, buffer)
                elif isinstance(query, ValueRangeQuery):
                    cells = self._supported_range(query, asr, buffer)
                elif isinstance(query, BackwardQuery):
                    cells = self._supported_backward(query, asr, buffer)
                else:
                    raise QueryError(f"unknown query shape {query!r}")
        delta = self.stats.delta_since(before)
        if self.context is not None and self.context.metrics is not None:
            # Per-ASR lookup traffic: which physical design served reads.
            self.context.metrics.inc(
                "asr.lookups",
                extension=asr.extension.value,
                decomposition=str(asr.decomposition),
            )
        return EvaluationResult(
            cells,
            delta.page_reads,
            delta.page_writes,
            f"asr:{asr.extension.value}:{asr.decomposition}",
            dict(delta.by_category),
        )

    # ------------------------------------------------------------------
    # unsupported strategies
    # ------------------------------------------------------------------

    def _charge_object(self, oid: OID, type_name: str, buffer) -> None:
        if self.store is not None:
            self.store.access(oid, type_name, buffer)

    def _forward_traverse(self, query: ForwardQuery, buffer) -> set[Cell]:
        """Pointer-chasing from a single start object (Eq. 31 profile)."""
        path, i, j = query.path, query.i, query.j
        if isinstance(query.start, OID) and query.start not in self.db:
            return set()
        frontier: set[Cell] = {query.start}
        for level in range(i, j):
            step = path.steps[level]
            next_frontier: set[Cell] = set()
            for cell in frontier:
                if not isinstance(cell, OID):
                    continue
                # Reading the attribute requires the object's page.
                self._charge_object(cell, self.db.type_of(cell), buffer)
                value = self.db.attr(cell, step.attribute)
                if value is NULL:
                    continue
                if step.is_set_occurrence:
                    assert isinstance(value, OID)
                    next_frontier.update(self.db.members(value))
                else:
                    next_frontier.add(value)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    def _range_scan(self, query: ValueRangeQuery, buffer) -> set[Cell]:
        """Exhaustive search with a value-range predicate at the terminal."""
        from repro.asr.asr import cell_key

        path, i = query.path, query.i
        origin_type = path.types[i]
        if self.store is not None:
            self.store.scan_type(origin_type, buffer)
        lo_key, hi_key = cell_key(query.lo), cell_key(query.hi)
        origins: set[Cell] = set()
        for oid in self.db.extent(origin_type):
            reached = self._forward_from(
                oid, path, i, path.n, buffer, charge_start=False
            )
            if any(lo_key <= cell_key(value) < hi_key for value in reached):
                origins.add(oid)
        return origins

    def _backward_scan(self, query: BackwardQuery, buffer) -> set[Cell]:
        """Exhaustive search from the ``t_i`` extent (Eq. 32 profile)."""
        path, i, j = query.path, query.i, query.j
        origin_type = path.types[i]
        if self.store is not None:
            self.store.scan_type(origin_type, buffer)
        origins: set[Cell] = set()
        for oid in self.db.extent(origin_type):
            reached = self._forward_from(oid, path, i, j, buffer, charge_start=False)
            if query.target in reached:
                origins.add(oid)
        return origins

    def _forward_from(
        self, start: Cell, path, i: int, j: int, buffer, charge_start: bool
    ) -> set[Cell]:
        frontier: set[Cell] = {start}
        for level in range(i, j):
            step = path.steps[level]
            next_frontier: set[Cell] = set()
            for cell in frontier:
                if not isinstance(cell, OID):
                    continue
                if level > i or charge_start:
                    self._charge_object(cell, self.db.type_of(cell), buffer)
                value = self.db.attr(cell, step.attribute)
                if value is NULL:
                    continue
                if step.is_set_occurrence:
                    assert isinstance(value, OID)
                    next_frontier.update(self.db.members(value))
                else:
                    next_frontier.add(value)
            frontier = next_frontier
            if not frontier:
                break
        return frontier

    # ------------------------------------------------------------------
    # supported strategies
    # ------------------------------------------------------------------

    def _supported_forward(
        self, query: ForwardQuery, asr: AccessSupportRelation, buffer
    ) -> set[Cell]:
        path = asr.path
        first_column = path.column_of(query.i)
        last_column = path.column_of(query.j)
        frontier: set[Cell] = {query.start}
        for partition in asr.partitions:
            a, b = partition.first_column, partition.last_column
            if b <= first_column:
                continue
            if a >= last_column:
                break
            if a < first_column:
                # The query's origin lies strictly inside this partition:
                # every page must be inspected (second sum of Eq. 33).
                offset = first_column - a
                rows = [
                    row for row in partition.scan(buffer) if row[offset] in frontier
                ]
            else:
                rows = [
                    row
                    for cell in frontier
                    for row in partition.lookup_forward(cell, buffer)
                ]
            advance = min(b, last_column) - a
            frontier = {row[advance] for row in rows if row[advance] is not NULL}
            if not frontier:
                break
        return frontier

    def _supported_range(
        self, query: ValueRangeQuery, asr: AccessSupportRelation, buffer
    ) -> set[Cell]:
        """Index range scan over the final partition's value clustering."""
        path = asr.path
        first_column = path.column_of(query.i)
        last_column = path.m
        frontier: set[Cell] | None = None
        for partition in reversed(asr.partitions):
            a, b = partition.first_column, partition.last_column
            if b <= first_column:
                break
            if frontier is None:
                # The terminal partition: one range scan over the values.
                rows = partition.lookup_backward_range(query.lo, query.hi, buffer)
            else:
                rows = [
                    row
                    for cell in frontier
                    for row in partition.lookup_backward(cell, buffer)
                ]
            advance = max(a, first_column) - a
            frontier = {row[advance] for row in rows if row[advance] is not NULL}
            if not frontier:
                break
        return frontier or set()

    def _supported_backward(
        self, query: BackwardQuery, asr: AccessSupportRelation, buffer
    ) -> set[Cell]:
        path = asr.path
        first_column = path.column_of(query.i)
        last_column = path.column_of(query.j)
        frontier: set[Cell] = {query.target}
        for partition in reversed(asr.partitions):
            a, b = partition.first_column, partition.last_column
            if a >= last_column:
                continue
            if b <= first_column:
                break
            if b > last_column:
                # The query's target lies strictly inside this partition.
                offset = last_column - a
                rows = [
                    row for row in partition.scan(buffer) if row[offset] in frontier
                ]
            else:
                rows = [
                    row
                    for cell in frontier
                    for row in partition.lookup_backward(cell, buffer)
                ]
            advance = max(a, first_column) - a
            frontier = {row[advance] for row in rows if row[advance] is not NULL}
            if not frontier:
                break
        return frontier
