"""The compiled-plan cache behind the daemon's ``POST /query`` front door.

Hot query texts should skip parse → validate → plan entirely: the cache
maps ``(normalized query text, ASR-manager epoch)`` to a
:class:`~repro.query.executor.CompiledSelect`.  Keying on the epoch
makes invalidation automatic — any maintenance batch, quarantine
transition, recovery rebuild, or ASR (de)registration bumps
``ASRManager.epoch``, so every cached plan from before the change
simply stops being found.  Stale epochs are evicted by the LRU bound;
no explicit flush is ever needed.

Normalization is purely lexical (whitespace collapsing outside string
literals), so it can never conflate two semantically different texts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.query.executor import CompiledSelect


def normalize_query(text: str) -> str:
    """Collapse insignificant whitespace so trivial variants share a plan.

    Runs of whitespace outside double-quoted string literals become one
    space; leading/trailing whitespace is dropped.  String literals are
    preserved byte-for-byte (``\\"`` escapes honoured), so normalization
    never changes what a query means — at worst two equivalent texts
    normalize differently and plan twice.
    """
    out: list[str] = []
    in_string = False
    escaped = False
    pending_space = False
    for ch in text:
        if in_string:
            out.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space:
            if out:
                out.append(" ")
            pending_space = False
        out.append(ch)
        if ch == '"':
            in_string = True
    return "".join(out)


class CompiledPlanCache:
    """A bounded, thread-safe LRU of compiled select statements.

    Keys are ``(normalized text, epoch)`` pairs; values are
    :class:`CompiledSelect` objects ready for
    :meth:`~repro.query.executor.SelectExecutor.run_compiled`.  Hits,
    misses, and evictions are published through the attached
    :class:`~repro.telemetry.registry.MetricsRegistry` as
    ``query.cache.hits`` / ``query.cache.misses`` /
    ``query.cache.evictions``, plus a ``query.cache.size`` gauge.
    """

    def __init__(self, capacity: int = 128, registry=None) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self.registry = registry
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int], CompiledSelect] = OrderedDict()
        if registry is not None:
            registry.gauge_fn("query.cache.size", lambda: float(len(self._entries)))

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.inc(name)

    def get(self, text: str, epoch: int) -> CompiledSelect | None:
        """The cached plan for ``(text, epoch)``, refreshed as most recent."""
        key = (text, epoch)
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is None:
                self._count("query.cache.misses")
                return None
            self._entries.move_to_end(key)
        self._count("query.cache.hits")
        return compiled

    def put(self, text: str, epoch: int, compiled: CompiledSelect) -> None:
        """Insert a freshly compiled plan, evicting the LRU tail if full."""
        if self.capacity == 0:
            return
        key = (text, epoch)
        evicted = 0
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        for _ in range(evicted):
            self._count("query.cache.evictions")

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> dict:
        """JSON-able snapshot for ``/stats`` and the final report."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "epochs": sorted({epoch for _, epoch in self._entries}),
            }
