"""Query descriptors: the abstract ``Q_{i,j}`` shapes of section 5.1."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.gom.objects import Cell
from repro.gom.paths import PathExpression


@dataclass(frozen=True)
class Query:
    """Common part of forward/backward path queries.

    ``i`` and ``j`` are type indices into the path (``0 ≤ i < j ≤ n``):
    the query ranges over the sub-chain ``t_i.A_{i+1}.….A_j``.
    """

    path: PathExpression
    i: int
    j: int

    def __post_init__(self) -> None:
        if not 0 <= self.i < self.j <= self.path.n:
            raise QueryError(
                f"invalid query bounds ({self.i}, {self.j}) for a path of "
                f"length {self.path.n}"
            )

    @property
    def spans_whole_path(self) -> bool:
        return self.i == 0 and self.j == self.path.n


@dataclass(frozen=True)
class ForwardQuery(Query):
    """``Q_{i,j}(fw)``: the ``t_j`` cells reachable from ``start`` ∈ ``t_i``.

    The SQL shape (section 5.1.2)::

        select o.A_{i+1}.….A_j  from o in C  where o = start
    """

    start: Cell = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.start is None:
            raise QueryError("a forward query needs a start cell")

    @property
    def kind(self) -> str:
        return "fw"

    def __str__(self) -> str:
        return f"Q{self.i},{self.j}(fw) from {self.start} over {self.path}"


@dataclass(frozen=True)
class BackwardQuery(Query):
    """``Q_{i,j}(bw)``: the ``t_i`` objects whose path reaches ``target``.

    The SQL shape (section 5.1.1)::

        select o  from o in C  where target in o.A_{i+1}.….A_j

    ``target`` may be an OID of type ``t_j`` or — when the path terminates
    in an atomic type and ``j = n`` — an atomic value (the paper's Query 1
    compares ``….Location`` with ``"Utopia"``).
    """

    target: Cell = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.target is None:
            raise QueryError("a backward query needs a target cell")

    @property
    def kind(self) -> str:
        return "bw"

    def __str__(self) -> str:
        return f"Q{self.i},{self.j}(bw) to {self.target} over {self.path}"


@dataclass(frozen=True)
class ValueRangeQuery(Query):
    """Range form of the backward query: origins reaching a value in [lo, hi).

    Only meaningful when the path terminates in an atomic type and the
    query's right end is ``j = n`` — the backward-clustered B+ tree of the
    final partition is keyed on the values, so this is an index range
    scan (an ability the paper's storage choice buys for free).
    """

    lo: Cell = None  # type: ignore[assignment]
    hi: Cell = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.lo is None or self.hi is None:
            raise QueryError("a range query needs both bounds")
        if self.j != self.path.n:
            raise QueryError("range queries must end at the path terminal (j = n)")
        if not self.path.terminal_is_atomic:
            raise QueryError("range queries require an atomic path terminal")

    @property
    def kind(self) -> str:
        return "bw"

    def __str__(self) -> str:
        return (
            f"Q{self.i},{self.j}(bw range [{self.lo!r}, {self.hi!r})) "
            f"over {self.path}"
        )
