"""GemStone-style index paths (Maier & Stein, 1986).

Per the paper's related-work discussion, GemStone's index paths are the
special case of access support relations with

* **linear paths only** — no set-valued attributes along the chain;
* **binary partitions** — each consecutive pair of types indexed
  separately;
* complete-path semantics (the canonical extension).

:func:`gemstone_index_path` builds exactly that restricted design and
rejects anything outside it, making the subsumption statement checkable.
"""

from __future__ import annotations

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.errors import PathError
from repro.gom.database import ObjectBase
from repro.gom.paths import PathExpression


def gemstone_index_path(db: ObjectBase, path: PathExpression) -> AccessSupportRelation:
    """Build a GemStone-style index path over ``path``.

    Raises :class:`~repro.errors.PathError` when the path traverses a
    set- or list-valued attribute — the restriction the paper lifts.
    """
    if not path.is_linear:
        offending = [
            step.attribute for step in path.steps if step.is_set_occurrence
        ]
        raise PathError(
            "GemStone index paths support only single-valued attribute "
            f"chains; {path} traverses collection-valued {offending}"
        )
    return AccessSupportRelation.build(
        db, path, Extension.CANONICAL, Decomposition.binary(path.m)
    )
