"""Orion-style nested attribute indexes (Kim, Kim & Dale).

A nested attribute index maps the *terminal value* of a path directly to
the set of anchor objects: conceptually the non-contiguous projection of
the canonical extension onto its first and last columns.  It answers the
whole-path backward query in one lookup and nothing else — no forward
queries, no partial ranges — which is precisely the limitation access
support relations remove.

The implementation reuses this library's maintenance machinery: the
index keeps the canonical extension as its logical source of truth
(so :class:`~repro.asr.manager.ASRManager` can drive it through
``apply_delta`` exactly like an ASR) and stores the reference-counted
``(value, anchor)`` pairs in one B+ tree clustered on the values.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.asr.asr import cell_key
from repro.asr.extensions import Extension, build_extension
from repro.asr.journal import ASRState
from repro.context import resolve_buffer
from repro.errors import PathError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.storage.btree import BPlusTree
from repro.storage.pages import (
    DEFAULT_OID_SIZE,
    DEFAULT_PAGE_SIZE,
    btree_fanout,
)


class NestedAttributeIndex:
    """``terminal value → anchor objects`` over one path expression.

    Register with an :class:`~repro.asr.manager.ASRManager` to keep it
    maintained under updates; it deliberately mimics the ASR interface
    the manager relies on (``path``, ``extension``, ``extension_relation``,
    ``apply_delta``, ``consistency_check``).
    """

    def __init__(
        self,
        path: PathExpression,
        page_size: int = DEFAULT_PAGE_SIZE,
        oid_size: int = DEFAULT_OID_SIZE,
    ) -> None:
        if not path.terminal_is_atomic:
            raise PathError(
                "nested attribute indexes require an atomic path terminal"
            )
        self.path = path
        self.extension = Extension.CANONICAL
        self.page_size = page_size
        self.oid_size = oid_size
        # (value, anchor) pairs: ~2 cells per entry.
        self.pairs_per_page = page_size // (2 * oid_size)
        self._fanout = btree_fanout(page_size=page_size, oid_size=oid_size)
        from repro.asr.relation import Relation

        self.extension_relation = Relation(path.column_labels())
        self._counts: Counter[tuple[Cell, Cell]] = Counter()
        self.tree = BPlusTree(self.pairs_per_page, self._fanout)
        #: Crash-consistency state, mirrored from the ASR interface so
        #: the manager's journal/quarantine machinery drives this index
        #: too (recovery falls back to :meth:`rebuild` — there are no
        #: partitions to reload selectively).
        self.state = ASRState.CONSISTENT

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, db: ObjectBase, path: PathExpression) -> "NestedAttributeIndex":
        index = cls(path)
        index.rebuild(db)
        return index

    def rebuild(self, db: ObjectBase) -> None:
        """Recompute from scratch (initial load)."""
        self.extension_relation = build_extension(db, self.path, Extension.CANONICAL)
        counts: Counter[tuple[Cell, Cell]] = Counter()
        for row in self.extension_relation.rows:
            counts[(row[-1], row[0])] += 1
        self._counts = counts
        entries = sorted(
            ((cell_key(value), cell_key(anchor)), (value, anchor))
            for value, anchor in counts
        )
        self.tree = BPlusTree.bulk_load(entries, self.pairs_per_page, self._fanout)
        self.state = ASRState.CONSISTENT

    @property
    def quarantined(self) -> bool:
        """True while crash recovery is pending (see repro.asr.journal)."""
        return self.state is ASRState.QUARANTINED

    # ------------------------------------------------------------------
    # maintenance (driven by ASRManager)
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        added: Iterable[tuple[Cell, ...]],
        removed: Iterable[tuple[Cell, ...]],
        context=None,
        *,
        buffer=None,
    ) -> None:
        """Apply canonical-extension row deltas to the pair store."""
        buffer = resolve_buffer(context, buffer)
        for row in removed:
            row = tuple(row)
            if row not in self.extension_relation:
                continue
            self.extension_relation.discard(row)
            pair = (row[-1], row[0])
            remaining = self._counts[pair] - 1
            if remaining:
                self._counts[pair] = remaining
            else:
                del self._counts[pair]
                self.tree.delete((cell_key(pair[0]), cell_key(pair[1])), buffer)
        for row in added:
            row = tuple(row)
            if row in self.extension_relation:
                continue
            self.extension_relation.add(row)
            pair = (row[-1], row[0])
            self._counts[pair] += 1
            if self._counts[pair] == 1:
                self.tree.insert(
                    (cell_key(pair[0]), cell_key(pair[1])), pair, buffer
                )

    # ------------------------------------------------------------------
    # the one supported query
    # ------------------------------------------------------------------

    def supports_query(self, i: int, j: int) -> bool:
        """Only the whole-path backward lookup is answerable."""
        return i == 0 and j == self.path.n

    def lookup(self, value: Cell, context=None, *, buffer=None) -> set[OID]:
        """Anchors whose path reaches ``value`` — one index probe."""
        buffer = resolve_buffer(context, buffer)
        prefix = cell_key(value)
        anchors: set[OID] = set()
        for key, (_value, anchor) in self.tree.range(lo=(prefix, ()), context=buffer):
            if key[0] != prefix:
                break
            anchors.add(anchor)
        return anchors

    def lookup_range(self, lo: Cell, hi: Cell, context=None, *, buffer=None) -> set[OID]:
        """Anchors reaching any value in ``[lo, hi)`` (value clustering)."""
        buffer = resolve_buffer(context, buffer)
        anchors: set[OID] = set()
        for _key, (_value, anchor) in self.tree.range(
            lo=(cell_key(lo), ()), hi=(cell_key(hi), ()), context=buffer
        ):
            anchors.add(anchor)
        return anchors

    # ------------------------------------------------------------------
    # statistics / verification
    # ------------------------------------------------------------------

    @property
    def pair_count(self) -> int:
        return len(self._counts)

    @property
    def tuple_count(self) -> int:
        """ASR-interface shim: stored (value, anchor) pairs."""
        return len(self._counts)

    #: ASR-interface shim: a nested index has no partitions of its own.
    partitions: tuple = ()

    @property
    def total_bytes(self) -> int:
        return self.pair_count * 2 * self.oid_size

    @property
    def total_pages(self) -> int:
        return self.tree.leaf_count() if self.pair_count else 0

    @property
    def decomposition(self):
        """ASR-interface shim: the index has no contiguous decomposition."""
        return None

    def consistency_check(self, db: ObjectBase) -> None:
        """Assert the stored pairs match a from-scratch recomputation."""
        expected_rows = build_extension(db, self.path, Extension.CANONICAL).rows
        assert expected_rows == self.extension_relation.rows, (
            "nested index's canonical extension drifted"
        )
        expected_pairs: Counter = Counter()
        for row in expected_rows:
            expected_pairs[(row[-1], row[0])] += 1
        assert expected_pairs == self._counts, "nested index pair counts drifted"
        stored = {pair for _key, pair in self.tree.items()}
        assert stored == set(expected_pairs), "nested index tree drifted"

    def __repr__(self) -> str:
        return (
            f"NestedAttributeIndex({self.path}, {self.pair_count} value/anchor pairs)"
        )
