"""Baseline indexing schemes the paper subsumes (section 1).

The paper positions access support relations against two earlier
object-oriented indexing proposals and claims both as special cases:

* **GemStone index paths** (Maier & Stein 1986): chains "restricted to
  … only single-valued attributes", represented as "binary partitions of
  the access path" — i.e. a canonical-extension ASR over a *linear* path
  in *binary* decomposition (:func:`gemstone_index_path`);
* **Orion nested attribute indexes** (Kim/Kim/Dale 1987/89): one index
  mapping the terminal attribute *value* directly to the anchor objects
  — i.e. the non-contiguous ``{0, m}`` projection of the canonical
  extension (:class:`NestedAttributeIndex`).

Implementing them makes the subsumption claim executable: the
comparison benchmark shows the baselines answer exactly the whole-path
backward query (and nothing else), while ASRs cover prefix/suffix/
interior ranges and let the decomposition be tuned per workload.
"""

from repro.baselines.nested_index import NestedAttributeIndex
from repro.baselines.index_path import gemstone_index_path

__all__ = ["NestedAttributeIndex", "gemstone_index_path"]
