"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A type definition or schema lookup is invalid.

    Raised for duplicate type names, unknown supertypes, attribute clashes
    under multiple inheritance, and references to undefined types.
    """


class TypingError(ReproError):
    """A value violates the strong-typing rules of GOM.

    GOM is strongly typed: every attribute, set element, and variable is
    constrained to a declared type, which acts as an *upper bound* — the
    actual instance may belong to a subtype (paper, section 2).
    """


class PathError(ReproError):
    """A path expression does not satisfy Definition 3.1 of the paper."""


class ObjectBaseError(ReproError):
    """An operation on the object base is invalid.

    Examples: dereferencing an unknown OID, deleting an object that is
    still referenced while integrity enforcement is on, or redefining a
    database variable with an incompatible type.
    """


class RelationError(ReproError):
    """A relational operation received incompatible operands."""


class DecompositionError(ReproError):
    """A decomposition violates Definition 3.8.

    Decompositions must start at column 0, end at column ``m``, be strictly
    increasing, and have overlapping borders between adjacent partitions.
    """


class StorageError(ReproError):
    """The page-level storage engine was used inconsistently."""


class InjectedFault(StorageError):
    """A *simulated, transient* I/O fault raised by fault injection.

    Raised by a :class:`~repro.faults.FaultInjector` from a page read or
    write (probabilistically, under a deterministic seed) or from a named
    fault point armed with :meth:`~repro.faults.FaultInjector.fault_at`.
    Transient by definition: retrying the operation may succeed, which is
    what the bounded retry/backoff in
    :meth:`~repro.asr.manager.ASRManager.recover` exercises.
    """


class SimulatedCrash(ReproError):
    """A simulated process crash raised at a named crash point.

    Unlike :class:`InjectedFault` this is *not* retryable: it models the
    process dying mid-operation, so it deliberately does not derive from
    :class:`StorageError` and must never be swallowed by retry loops.
    Structures protected by an intent journal (the ASR flush pipeline)
    are left quarantined and recoverable; the test harness catches the
    crash where a real system would restart.
    """


class RecoveryError(ReproError):
    """Crash recovery of an access support relation failed.

    Raised when :meth:`~repro.asr.manager.ASRManager.recover` exhausts
    its bounded retries and the scoped-rebuild fallback also cannot
    restore consistency — e.g. for a quarantined ASR whose partitions
    are physically shared with other ASRs (the shared bundle must be
    rebuilt as a whole instead).
    """


class ExitHookError(ReproError):
    """Several exit hooks of an :class:`~repro.context.ExecutionContext`
    failed while the context was closing.

    ``close()`` runs *every* registered hook even when one raises (a
    failing trace exporter must not prevent an ASR flush, and vice
    versa); a single failure is re-raised as itself, two or more are
    aggregated into this error with the originals in :attr:`errors`
    (the first also as ``__cause__``).
    """

    def __init__(self, errors):
        self.errors = list(errors)
        super().__init__(
            f"{len(self.errors)} exit hook(s) failed while closing: "
            + "; ".join(f"{type(e).__name__}: {e}" for e in self.errors)
        )


class QueryError(ReproError):
    """A query is malformed or cannot be evaluated.

    Also raised when a query is issued against an access support relation
    extension that does not support it (Eq. 35 applicability rules) and no
    fallback evaluation was requested.
    """


class CostModelError(ReproError):
    """The analytical cost model received inconsistent parameters."""


class ParseError(QueryError):
    """The SQL-like surface syntax could not be parsed."""
