"""Deterministic fault injection for the storage simulator.

Production object stores treat clustering and index structures as
rebuildable but *verifiable* physical overlays; growing toward heavy
traffic means the system must survive storage faults rather than assume
they never happen.  This module supplies the policy object that makes
failures reproducible:

* **Probabilistic page faults** — :meth:`FaultInjector.on_read` /
  :meth:`FaultInjector.on_write` are consulted by every buffer scope
  (:mod:`repro.storage.stats`) on each *charged* page access and raise
  :class:`~repro.errors.InjectedFault` with the configured probability,
  driven by a seeded RNG so a failing run replays exactly.
* **Named crash points** — well-known call sites (the ASR flush and
  recovery pipeline in :mod:`repro.asr.manager`) call :func:`reach`
  with a dotted point name; an armed point raises
  :class:`~repro.errors.SimulatedCrash` (process death, not retryable)
  or a bounded number of :class:`~repro.errors.InjectedFault` raises
  (transient, retryable) at a chosen visit count.

An injector is hung off an :class:`~repro.context.ExecutionContext`
(``ExecutionContext(fault_injector=...)``), which threads it into every
buffer scope it creates, or passed directly to an
:class:`~repro.asr.manager.ASRManager`.

The crash-point names currently instrumented:

======================  ================================================
``asr.flush.journal``    all intent journals of a flush are written,
                         no tree has been touched yet
``asr.flush.mid-delta``  one ASR's removed rows are applied, its added
                         rows are not — the canonical torn state
``asr.flush.post-delta`` one ASR's delta is fully applied but its
                         journal is not yet committed
``asr.apply.*``          the same three stages on the eager (per-event)
                         maintenance path
``asr.recover.replay``   a recovery attempt is about to recompute the
                         journalled neighbourhood
``asr.recover.reload``   recovery is about to reload the partitions
                         from the healed logical relation
``asr.retune.build``     the adaptive designer is about to bulk-build a
                         replacement ASR (old one still serving)
``asr.retune.register``  the replacement is built and caught up; the
                         atomic swap has not happened yet
======================  ================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import InjectedFault, SimulatedCrash

__all__ = ["FaultInjector", "reach", "KNOWN_CRASH_POINTS"]

#: Every crash-point name the library currently instruments (arming an
#: unknown name is allowed — custom call sites may add their own — but
#: the CLI and tests validate against this list).
KNOWN_CRASH_POINTS = (
    "asr.apply.journal",
    "asr.apply.mid-delta",
    "asr.apply.post-delta",
    "asr.flush.journal",
    "asr.flush.mid-delta",
    "asr.flush.post-delta",
    "asr.recover.replay",
    "asr.recover.reload",
    "asr.retune.build",
    "asr.retune.register",
)


@dataclass
class _Arming:
    """One armed point: what to raise and when."""

    kind: str  # "crash" | "fault"
    fire_at: int  # absolute visit count at which the point first fires
    remaining: int  # for faults: how many more raises are left


class FaultInjector:
    """A reproducible fault policy for one execution.

    Parameters
    ----------
    seed:
        Seed for the probabilistic faults' RNG; identical seeds replay
        identical fault sequences for identical access sequences.
    read_fault_rate / write_fault_rate:
        Probability in ``[0, 1]`` that a charged page read / write
        raises :class:`~repro.errors.InjectedFault`.  Cache hits are
        never faulted: a resident page needs no physical I/O.
    """

    def __init__(
        self,
        seed: int | None = None,
        read_fault_rate: float = 0.0,
        write_fault_rate: float = 0.0,
    ) -> None:
        for name, rate in (("read", read_fault_rate), ("write", write_fault_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name}_fault_rate must lie in [0, 1], got {rate}")
        self.seed = seed
        self.read_fault_rate = read_fault_rate
        self.write_fault_rate = write_fault_rate
        self._rng = random.Random(seed)
        self._armed: dict[str, _Arming] = {}
        #: ``point name -> times visited`` (armed or not).
        self.hits: dict[str, int] = {}
        self.faults_injected = 0
        self.crashes_injected = 0

    # ------------------------------------------------------------------
    # arming named points
    # ------------------------------------------------------------------

    def crash_at(self, point: str, on_hit: int = 1) -> None:
        """Arm ``point`` to raise :class:`SimulatedCrash` on its
        ``on_hit``-th visit counted from now.  A crash point fires once
        and disarms itself (the "process" is dead; re-arm to crash the
        restarted run again)."""
        if on_hit < 1:
            raise ValueError("on_hit counts visits from 1")
        self._armed[point] = _Arming("crash", self.hits.get(point, 0) + on_hit, 1)

    def fault_at(self, point: str, times: int = 1, on_hit: int = 1) -> None:
        """Arm ``point`` to raise :class:`InjectedFault` on ``times``
        consecutive visits starting at the ``on_hit``-th from now —
        a transient fault that clears itself, for exercising retry."""
        if on_hit < 1:
            raise ValueError("on_hit counts visits from 1")
        if times < 1:
            raise ValueError("a transient fault fires at least once")
        self._armed[point] = _Arming("fault", self.hits.get(point, 0) + on_hit, times)

    def disarm(self, point: str | None = None) -> None:
        """Disarm one point, or every armed point when ``point`` is None."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    @property
    def armed_points(self) -> tuple[str, ...]:
        return tuple(sorted(self._armed))

    # ------------------------------------------------------------------
    # consultation (called by instrumented code)
    # ------------------------------------------------------------------

    def reach(self, point: str) -> None:
        """Record a visit of ``point``; raise if it is armed and due."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        arming = self._armed.get(point)
        if arming is None or count < arming.fire_at:
            return
        if arming.kind == "crash":
            del self._armed[point]
            self.crashes_injected += 1
            raise SimulatedCrash(f"simulated crash at {point!r} (visit {count})")
        if arming.remaining <= 0:
            return
        arming.remaining -= 1
        if arming.remaining == 0:
            del self._armed[point]
        self.faults_injected += 1
        raise InjectedFault(f"injected fault at {point!r} (visit {count})")

    def on_read(self, page_id, category: str = "page") -> None:
        """Consulted by buffer scopes on every charged page read."""
        if self.read_fault_rate and self._rng.random() < self.read_fault_rate:
            self.faults_injected += 1
            raise InjectedFault(f"injected read fault on page {page_id!r} ({category})")

    def on_write(self, page_id, category: str = "page") -> None:
        """Consulted by buffer scopes on every charged page write."""
        if self.write_fault_rate and self._rng.random() < self.write_fault_rate:
            self.faults_injected += 1
            raise InjectedFault(
                f"injected write fault on page {page_id!r} ({category})"
            )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed!r}, read={self.read_fault_rate:g}, "
            f"write={self.write_fault_rate:g}, armed={list(self._armed)}, "
            f"faults={self.faults_injected}, crashes={self.crashes_injected})"
        )


def reach(injector: FaultInjector | None, point: str) -> None:
    """None-safe :meth:`FaultInjector.reach` for instrumented call sites."""
    if injector is not None:
        injector.reach(point)
