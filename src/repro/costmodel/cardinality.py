"""Cardinalities of access support relations (section 4.2).

``partition_cardinality(profile, extension, i, j)`` estimates
``#E^{i,j}_X`` — the number of tuples of the ``(…, i, j, …)`` partition
of the ASR in extension ``X``.  Indices are *type* indices (the cost
model works under the paper's "no set sharing" simplification where the
collection-OID columns are dropped and ``m = n``; read ``n`` as ``m``
otherwise, as the paper notes at the end of section 3).

The four closed forms:

* **canonical** — paths crossing ``[i, j]`` that are anchored on both
  sides: ``P_RefBy(0,i) · path(i,j) · P_Ref(j,n)``;
* **full** — every maximal partial sub-path within ``[i, j]``: the double
  sum over segment length ``k`` and start ``l``, each weighted by the
  probability of being left-bounded at ``l`` and right-bounded at
  ``l+k``;
* **left-complete** — segments starting at ``i`` (reached from ``t_0``),
  of every length, right-bounded where they stop;
* **right-complete** — segments ending at ``j`` (reaching ``t_n``),
  left-bounded where they start.
"""

from __future__ import annotations

from repro.asr.extensions import Extension
from repro.costmodel.derived import DerivedQuantities, derived_for
from repro.costmodel.parameters import ApplicationProfile
from repro.errors import CostModelError


def partition_cardinality(
    profile: ApplicationProfile,
    extension: Extension,
    i: int,
    j: int,
    derived: DerivedQuantities | None = None,
) -> float:
    """``#E^{i,j}_X`` for the partition spanning type indices ``i..j``."""
    if not 0 <= i < j <= profile.n:
        raise CostModelError(f"invalid partition ({i}, {j}) for n={profile.n}")
    q = derived or derived_for(profile)
    if extension is Extension.CANONICAL:
        return _canonical(q, i, j)
    if extension is Extension.FULL:
        return _full(q, i, j)
    if extension is Extension.LEFT:
        return _left(q, i, j)
    if extension is Extension.RIGHT:
        return _right(q, i, j)
    raise CostModelError(f"unknown extension {extension!r}")


def extension_cardinality(
    profile: ApplicationProfile, extension: Extension
) -> float:
    """``#E_X`` of the whole, undecomposed relation (``i=0, j=n``)."""
    return partition_cardinality(profile, extension, 0, profile.n)


def _canonical(q: DerivedQuantities, i: int, j: int) -> float:
    n = q.profile.n
    return q.p_refby(0, i) * q.path(i, j) * q.p_ref(j, n)


def _full(q: DerivedQuantities, i: int, j: int) -> float:
    total = 0.0
    for k in range(1, j - i + 1):
        for l in range(i, j - k + 1):
            total += (
                q.p_lb(max(i, l - 1), l)
                * q.path(l, l + k)
                * q.p_rb(l + k, min(j, l + k + 1))
            )
    return total


def _left(q: DerivedQuantities, i: int, j: int) -> float:
    total = 0.0
    for k in range(1, j - i + 1):
        total += (
            q.p_refby(0, i)
            * q.path(i, i + k)
            * q.p_rb(i + k, min(j, i + k + 1))
        )
    return total


def _right(q: DerivedQuantities, i: int, j: int) -> float:
    n = q.profile.n
    total = 0.0
    for k in range(1, j - i + 1):
        total += (
            q.p_lb(max(i, j - k - 1), j - k)
            * q.path(j - k, j)
            * q.p_ref(j, n)
        )
    return total
