"""Application and system parameters (Figure 3 of the paper).

An :class:`ApplicationProfile` describes one path expression's world:

====================  =======================================================
``n``                 length of the access path (implied by the vectors)
``c[i]``              total number of objects of type ``t_i`` (i = 0..n)
``d[i]``              objects of ``t_i`` whose ``A_{i+1}`` is defined
                      (i = 0..n-1; the paper's tables show "—" for ``d_n``)
``fan[i]``            average references emanating from ``A_{i+1}``
                      of a ``t_i`` object (i = 0..n-1)
``shar[i]``           average number of ``t_i`` objects referencing the same
                      ``t_{i+1}`` object; defaults to ``d_i·fan_i / c_{i+1}``
``size[i]``           average object size in bytes (i = 0..n)
====================  =======================================================

Derived quantities (also Figure 3):

* ``e[i] = d_{i-1}·fan_{i-1} / shar_{i-1}`` — objects of ``t_i`` referenced
  from ``t_{i-1}`` (clamped to ``c_i``; the closed forms assume ``e ≤ c``);
* ``spread[i] = d_i / e_{i+1}``;
* ``ref[i] = d_i · fan_i`` — the number of ``A_{i+1}`` references.

The profile is an immutable value object (hashable) so that the derived
probabilistic quantities can be memoized per profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CostModelError
from repro.storage.pages import (
    DEFAULT_OID_SIZE,
    DEFAULT_PAGE_SIZE,
    DEFAULT_PP_SIZE,
)


@dataclass(frozen=True)
class SystemParameters:
    """Page geometry (Figure 3, "system-specific parameters")."""

    page_size: int = DEFAULT_PAGE_SIZE
    oid_size: int = DEFAULT_OID_SIZE
    pp_size: int = DEFAULT_PP_SIZE

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.oid_size <= 0 or self.pp_size <= 0:
            raise CostModelError("system parameters must be positive")

    @property
    def btree_fanout(self) -> int:
        """``B+fan = ⌊PageSize / (PPsize + OIDsize)⌋``."""
        return self.page_size // (self.pp_size + self.oid_size)


@dataclass(frozen=True)
class ApplicationProfile:
    """One application's characteristics along a path of length ``n``."""

    c: tuple[float, ...]
    d: tuple[float, ...]
    fan: tuple[float, ...]
    size: tuple[float, ...] = ()
    shar: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "c", tuple(float(x) for x in self.c))
        object.__setattr__(self, "d", tuple(float(x) for x in self.d))
        object.__setattr__(self, "fan", tuple(float(x) for x in self.fan))
        object.__setattr__(self, "size", tuple(float(x) for x in self.size))
        object.__setattr__(self, "shar", tuple(float(x) for x in self.shar))
        n = len(self.c) - 1
        if n < 1:
            raise CostModelError("a path profile needs at least two types")
        if len(self.d) != n or len(self.fan) != n:
            raise CostModelError(
                f"expected {n} d/fan entries for {n + 1} object counts, got "
                f"{len(self.d)} and {len(self.fan)}"
            )
        if self.size and len(self.size) != n + 1:
            raise CostModelError(f"expected {n + 1} size entries")
        if self.shar and len(self.shar) != n:
            raise CostModelError(f"expected {n} shar entries")
        for i, value in enumerate(self.c):
            if value <= 0:
                raise CostModelError(f"c[{i}] must be positive")
        for i, value in enumerate(self.d):
            if value < 0 or value > self.c[i]:
                raise CostModelError(f"d[{i}] must lie in [0, c[{i}]]")
        for i, value in enumerate(self.fan):
            if value < 0:
                raise CostModelError(f"fan[{i}] must be non-negative")
        for value in self.size:
            if value <= 0:
                raise CostModelError("object sizes must be positive")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """The path length."""
        return len(self.c) - 1

    def c_(self, i: int) -> float:
        self._check_type_index(i)
        return self.c[i]

    def d_(self, i: int) -> float:
        if not 0 <= i < self.n:
            raise CostModelError(f"d index {i} out of range 0..{self.n - 1}")
        return self.d[i]

    def fan_(self, i: int) -> float:
        if not 0 <= i < self.n:
            raise CostModelError(f"fan index {i} out of range 0..{self.n - 1}")
        return self.fan[i]

    def size_(self, i: int) -> float:
        self._check_type_index(i)
        if not self.size:
            raise CostModelError("this profile has no object sizes")
        return self.size[i]

    def _check_type_index(self, i: int) -> None:
        if not 0 <= i <= self.n:
            raise CostModelError(f"type index {i} out of range 0..{self.n}")

    # ------------------------------------------------------------------
    # derived parameters (Figure 3)
    # ------------------------------------------------------------------

    def shar_(self, i: int) -> float:
        """``shar_i``: given, or the uniform-distribution default.

        Figure 3's printed default ``shar_i = d_i·fan_i / c_{i+1}``
        combined with ``e_{i+1} = d_i·fan_i / shar_i`` degenerates to
        ``e_{i+1} = c_{i+1}`` — *every* object referenced — which
        contradicts the paper's own Figure 4 discussion ("there are few
        objects at the left side of the path", i.e. most ``t_{i+1}``
        objects are *not* referenced).  We therefore derive the default
        from the expected number of **distinct** targets hit when
        ``d_i·fan_i`` references fall uniformly on ``c_{i+1}`` objects::

            e_{i+1} = c_{i+1} · (1 − (1 − 1/c_{i+1})^{d_i·fan_i})
            shar_i  = d_i·fan_i / e_{i+1}        (always ≥ 1)

        Explicit ``shar`` values override this (and reproduce the printed
        formula if desired).
        """
        if not 0 <= i < self.n:
            raise CostModelError(f"shar index {i} out of range 0..{self.n - 1}")
        if self.shar:
            return self.shar[i]
        references = self.d[i] * self.fan[i]
        if references == 0:
            return 0.0
        targets = self.c[i + 1]
        distinct = targets * (1.0 - (1.0 - 1.0 / targets) ** references)
        return references / distinct

    def e_(self, i: int) -> float:
        """``e_i``: objects of ``t_i`` referenced from ``t_{i-1}`` (1 ≤ i ≤ n).

        Clamped to ``c_i`` — the derivation assumes references cannot hit
        more objects than exist.
        """
        if not 1 <= i <= self.n:
            raise CostModelError(f"e index {i} out of range 1..{self.n}")
        shar = self.shar_(i - 1)
        if shar == 0:
            return 0.0
        return min(self.d[i - 1] * self.fan[i - 1] / shar, self.c[i])

    def spread_(self, i: int) -> float:
        """``spread_i = d_i / e_{i+1}``."""
        e_next = self.e_(i + 1)
        if e_next == 0:
            return math.inf if self.d_(i) > 0 else 0.0
        return self.d_(i) / e_next

    def ref_(self, i: int) -> float:
        """``ref_i = d_i · fan_i``."""
        return self.d_(i) * self.fan_(i)

    # ------------------------------------------------------------------
    # convenience constructors / transforms
    # ------------------------------------------------------------------

    def with_d(self, d: tuple[float, ...]) -> "ApplicationProfile":
        """A copy with new defined-attribute counts (Figure 5/8 sweeps)."""
        return ApplicationProfile(self.c, tuple(d), self.fan, self.size, self.shar)

    def with_fan(self, fan: tuple[float, ...]) -> "ApplicationProfile":
        """A copy with new fan-outs (Figure 9 sweep)."""
        return ApplicationProfile(self.c, self.d, tuple(fan), self.size, self.shar)

    def with_size(self, size: tuple[float, ...]) -> "ApplicationProfile":
        """A copy with new object sizes (Figure 7/13 sweeps)."""
        return ApplicationProfile(self.c, self.d, self.fan, tuple(size), self.shar)
