"""Physical database design advisor.

The paper's conclusion: "the cost model … can be used to compute for all
(feasible) design choices the expected cost of pre-determined database
usage profiles.  From this, the best suited access support relation
extension and decomposition can be selected" — and it is "intended to be
integrated into our object-oriented DBMS … to (semi-)automate the task
of physical database design."

:class:`DesignAdvisor` is that component: it enumerates every
decomposition of the path (``2^{n-1}`` of them) crossed with the four
extensions, plus the no-support baseline, evaluates each under a given
operation mix and update probability, and ranks the designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.opmix import MixCostModel, OperationMix
from repro.costmodel.parameters import ApplicationProfile, SystemParameters


@dataclass(frozen=True)
class DesignChoice:
    """One ranked physical design.

    ``extension is None`` denotes the no-support baseline (no ASR at
    all); ``storage_bytes`` is then 0.
    """

    extension: Extension | None
    decomposition: Decomposition | None
    cost: float
    normalized: float
    storage_bytes: float

    def describe(self) -> str:
        if self.extension is None:
            return (
                f"no access support: {self.cost:.1f} pages/op "
                f"(normalized 1.000, no storage overhead)"
            )
        return (
            f"{self.extension.value:>5} dec={self.decomposition}: "
            f"{self.cost:.1f} pages/op (normalized {self.normalized:.3f}, "
            f"{self.storage_bytes / 1024:.0f} KiB)"
        )


class DesignAdvisor:
    """Exhaustive search over (extension, decomposition) designs."""

    def __init__(
        self,
        profile: ApplicationProfile,
        system: SystemParameters | None = None,
    ) -> None:
        self.profile = profile
        self.model = MixCostModel(profile, system)

    def enumerate(
        self,
        mix: OperationMix,
        p_up: float,
        include_baseline: bool = True,
        max_storage_bytes: float | None = None,
    ) -> list[DesignChoice]:
        """All designs ranked by expected cost (cheapest first).

        ``max_storage_bytes`` optionally drops designs whose ASR exceeds a
        storage budget — the knob a database designer actually has.
        """
        baseline = self.model.nosupport_cost(mix, p_up)
        choices: list[DesignChoice] = []
        if include_baseline:
            choices.append(DesignChoice(None, None, baseline, 1.0, 0.0))
        for dec in Decomposition.all_for(self.profile.n):
            for extension in Extension:
                storage_bytes = self.model.storage.relation_bytes(extension, dec)
                if max_storage_bytes is not None and storage_bytes > max_storage_bytes:
                    continue
                cost = self.model.mix_cost(extension, dec, mix, p_up)
                choices.append(
                    DesignChoice(
                        extension, dec, cost, cost / baseline if baseline else 0.0,
                        storage_bytes,
                    )
                )
        choices.sort(key=lambda choice: choice.cost)
        return choices

    def best(
        self,
        mix: OperationMix,
        p_up: float,
        max_storage_bytes: float | None = None,
    ) -> DesignChoice:
        """The cheapest design for the mix (possibly the baseline)."""
        return self.enumerate(mix, p_up, True, max_storage_bytes)[0]

    def report(self, mix: OperationMix, p_up: float, top: int = 10) -> str:
        """A human-readable ranking, for the examples and benches."""
        lines = [
            f"design ranking for {mix} at P_up={p_up:g} "
            f"(n={self.profile.n}):"
        ]
        for rank, choice in enumerate(self.enumerate(mix, p_up)[:top], start=1):
            lines.append(f"  {rank:2d}. {choice.describe()}")
        return "\n".join(lines)
