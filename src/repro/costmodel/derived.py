"""Derived probabilistic quantities (sections 4.1 and 5.6).

All closed forms from the paper, with the domain guards the formulas
need in the extreme corners of parameter space:

* probabilities are clamped into ``[0, 1]``;
* ``(1 - fan/e)`` and ``(1 - shar/d)`` bases are clamped to ``≥ 0``
  (a fan-out exceeding the number of reachable targets means every
  target is hit);
* divisions by zero (``d_i = 0``, ``e_j = 0``) collapse to the obvious
  limits (no paths).

Implemented quantities:

=====================  ======================================================
``p_a(i)``             Eq. 1 — ``P_{A_i} = d_i / c_i``
``p_h(i)``             Eq. 2 — ``P_{H_i} = e_i / c_i``
``refby(i, j)``        Eq. 6 — objects of ``t_j`` referenced from ``t_i``
``p_refby(i, j)``      Eq. 7
``ref(i, j)``          Eq. 8 — objects of ``t_i`` with a path to ``t_j``
``p_ref(i, j)``        Eq. 9
``path(i, j)``         Eq. 10 — number of (partial) paths
``p_lb(i, j)``         Eq. 11 — "left bound": not hit from ``t_i``
``p_rb(i, j)``         Eq. 12 — "right bound": no emanating path to ``t_j``
``refby_k(i, j, k)``   Eq. 29 — three-argument generalization
``ref_k(i, j, k)``     Eq. 30
``p_path(l)``          Eq. 38 / ``p_nopath(l)`` Eq. 37
=====================  ======================================================
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.costmodel.parameters import ApplicationProfile
from repro.errors import CostModelError


def _clamp01(x: float) -> float:
    return min(max(x, 0.0), 1.0)


class DerivedQuantities:
    """Memoized evaluation of the derived quantities for one profile."""

    def __init__(self, profile: ApplicationProfile) -> None:
        self.profile = profile
        self._refby_cache: dict[tuple[int, int], float] = {}
        self._ref_cache: dict[tuple[int, int], float] = {}
        self._refby_k_cache: dict[tuple[int, int, float], float] = {}
        self._ref_k_cache: dict[tuple[int, int, float], float] = {}

    # ------------------------------------------------------------------
    # elementary probabilities
    # ------------------------------------------------------------------

    def p_a(self, i: int) -> float:
        """Eq. 1: probability that ``o_i.A_{i+1}`` is defined."""
        return _clamp01(self.profile.d_(i) / self.profile.c_(i))

    def p_h(self, i: int) -> float:
        """Eq. 2: probability that a ``t_i`` object is hit from ``t_{i-1}``."""
        return _clamp01(self.profile.e_(i) / self.profile.c_(i))

    # ------------------------------------------------------------------
    # RefBy / Ref (Eqs. 6-9)
    # ------------------------------------------------------------------

    def refby(self, i: int, j: int) -> float:
        """Eq. 6: objects of ``t_j`` on ≥1 (partial) path from ``t_i``."""
        self._check_pair(i, j)
        key = (i, j)
        if key not in self._refby_cache:
            if j == i + 1:
                value = self.profile.e_(j)
            else:
                e_j = self.profile.e_(j)
                if e_j == 0:
                    value = 0.0
                else:
                    base = _clamp01(1.0 - self.profile.fan_(j - 1) / e_j)
                    exponent = self.refby(i, j - 1) * self.p_a(j - 1)
                    value = e_j * (1.0 - base**exponent)
            self._refby_cache[key] = min(value, self.profile.c_(j))
        return self._refby_cache[key]

    def p_refby(self, i: int, j: int) -> float:
        """Eq. 7: probability a given ``t_j`` object is reached from ``t_i``."""
        if i == j:
            return 1.0
        return _clamp01(self.refby(i, j) / self.profile.c_(j))

    def ref(self, i: int, j: int) -> float:
        """Eq. 8: objects of ``t_i`` with ≥1 path leading to ``t_j``."""
        self._check_pair(i, j)
        key = (i, j)
        if key not in self._ref_cache:
            d_i = self.profile.d_(i)
            if j == i + 1 or d_i == 0:
                value = d_i
            else:
                base = _clamp01(1.0 - self.profile.shar_(i) / d_i)
                exponent = self.ref(i + 1, j) * self.p_h(i + 1)
                value = d_i * (1.0 - base**exponent)
            self._ref_cache[key] = min(value, self.profile.c_(i))
        return self._ref_cache[key]

    def p_ref(self, i: int, j: int) -> float:
        """Eq. 9: probability a given ``t_i`` object reaches ``t_j``."""
        if i == j:
            return 1.0
        return _clamp01(self.ref(i, j) / self.profile.c_(i))

    # ------------------------------------------------------------------
    # path counts and bound probabilities (Eqs. 10-12)
    # ------------------------------------------------------------------

    def path(self, i: int, j: int) -> float:
        """Eq. 10: number of paths between ``t_i`` and ``t_j`` objects."""
        self._check_pair(i, j)
        count = self.profile.ref_(i)
        for l in range(i + 1, j):
            count *= self.p_a(l) * self.profile.fan_(l)
        return count

    def p_lb(self, i: int, j: int) -> float:
        """Eq. 11: a ``t_j`` object is *not* hit by any path from ``t_i``."""
        if i < j:
            return _clamp01(1.0 - self.p_refby(i, j))
        return 1.0

    def p_rb(self, i: int, j: int) -> float:
        """Eq. 12: a ``t_i`` object has *no* emanating path to ``t_j``."""
        if i < j:
            return _clamp01(1.0 - self.p_ref(i, j))
        return 1.0

    # ------------------------------------------------------------------
    # three-argument generalizations (Eqs. 29-30)
    # ------------------------------------------------------------------

    def refby_k(self, i: int, j: int, k: float) -> float:
        """Eq. 29: ``t_j`` objects on ≥1 path from a ``k``-subset of ``t_i``."""
        self._check_pair(i, j)
        if k <= 0:
            return 0.0
        key = (i, j, float(k))
        if key not in self._refby_k_cache:
            e_j = self.profile.e_(j)
            if e_j == 0:
                value = 0.0
            elif j == i + 1:
                base = _clamp01(1.0 - self.profile.fan_(i) / e_j)
                value = e_j * (1.0 - base**k)
            else:
                base = _clamp01(1.0 - self.profile.fan_(j - 1) / e_j)
                exponent = self.refby_k(i, j - 1, k) * self.p_a(j - 1)
                value = e_j * (1.0 - base**exponent)
            self._refby_k_cache[key] = min(value, self.profile.c_(j))
        return self._refby_k_cache[key]

    def ref_k(self, i: int, j: int, k: float) -> float:
        """Eq. 30: ``t_i`` objects with a path to a ``k``-subset of ``t_j``."""
        self._check_pair(i, j)
        if k <= 0:
            return 0.0
        key = (i, j, float(k))
        if key not in self._ref_k_cache:
            d_i = self.profile.d_(i)
            if d_i == 0:
                value = 0.0
            else:
                base = _clamp01(1.0 - self.profile.shar_(i) / d_i)
                if j == i + 1:
                    value = d_i * (1.0 - base**k)
                else:
                    exponent = self.ref_k(i + 1, j, k) * self.p_h(i + 1)
                    value = d_i * (1.0 - base**exponent)
            self._ref_k_cache[key] = min(value, self.profile.c_(i))
        return self._ref_k_cache[key]

    # ------------------------------------------------------------------
    # complete-path probabilities (Eqs. 37-38)
    # ------------------------------------------------------------------

    def p_path(self, l: int) -> float:
        """Eq. 38: a complete ``t_0``→``t_n`` path runs through ``o_l``."""
        return _clamp01(self.p_refby(0, l) * self.p_ref(l, self.profile.n))

    def p_nopath(self, l: int) -> float:
        """Eq. 37."""
        return _clamp01(1.0 - self.p_path(l))

    # ------------------------------------------------------------------
    def _check_pair(self, i: int, j: int) -> None:
        if not 0 <= i < j <= self.profile.n:
            raise CostModelError(
                f"index pair ({i}, {j}) out of range for n={self.profile.n}"
            )


@lru_cache(maxsize=256)
def derived_for(profile: ApplicationProfile) -> DerivedQuantities:
    """Shared memoized :class:`DerivedQuantities` per profile."""
    return DerivedQuantities(profile)
