"""Operation mixes (section 6.4).

A mix ``M = (Q_mix, U_mix, P_up)`` consists of weighted queries,
weighted ``ins_i`` updates, and the probability ``P_up`` that a database
operation is an update.  The expected per-operation cost of a physical
design ``(X, dec)`` is::

    cost = (1 − P_up) · Σ w_q · Q_X(q, dec)  +  P_up · Σ w_u · upd_X(u, dec)

The paper's figures 14–17 plot this (normalized) against ``P_up``; the
interesting outputs are the *break-even points* where designs swap
places, which :meth:`MixCostModel.break_even` locates by bisection on a
dense grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.costmodel.querycost import QueryCostModel
from repro.costmodel.storagecost import StorageModel
from repro.costmodel.updatecost import UpdateCostModel
from repro.errors import CostModelError


@dataclass(frozen=True)
class QuerySpec:
    """One weighted query shape, e.g. ``Q_{0,4}(bw)``."""

    i: int
    j: int
    kind: str  # 'fw' | 'bw'

    def __str__(self) -> str:
        return f"Q{self.i},{self.j}({self.kind})"


@dataclass(frozen=True)
class UpdateSpec:
    """One weighted update shape ``ins_i``."""

    i: int

    def __str__(self) -> str:
        return f"ins_{self.i}"


@dataclass(frozen=True)
class OperationMix:
    """Weighted queries and updates (weights each sum to 1)."""

    queries: tuple[tuple[float, QuerySpec], ...]
    updates: tuple[tuple[float, UpdateSpec], ...] = ()

    def __post_init__(self) -> None:
        for weights, label in (
            ([w for w, _ in self.queries], "query"),
            ([w for w, _ in self.updates], "update"),
        ):
            if weights and not math.isclose(sum(weights), 1.0, abs_tol=1e-9):
                raise CostModelError(f"{label} weights must sum to 1, got {sum(weights)}")

    def __str__(self) -> str:
        queries = ", ".join(f"{w:g}·{q}" for w, q in self.queries)
        updates = ", ".join(f"{w:g}·{u}" for w, u in self.updates)
        return f"Q_mix={{{queries}}} U_mix={{{updates}}}"


class MixCostModel:
    """Expected per-operation cost of physical designs under a mix."""

    def __init__(
        self,
        profile: ApplicationProfile,
        system: SystemParameters | None = None,
    ) -> None:
        self.profile = profile
        self.system = system or SystemParameters()
        self.storage = StorageModel(profile, self.system)
        self.querycost = QueryCostModel(profile, self.system, self.storage)
        self.updatecost = UpdateCostModel(
            profile, self.system, self.storage, self.querycost
        )

    # ------------------------------------------------------------------
    # components
    # ------------------------------------------------------------------

    def query_mix_cost(
        self, extension: Extension, dec: Decomposition, mix: OperationMix
    ) -> float:
        return sum(
            w * self.querycost.q(extension, spec.i, spec.j, spec.kind, dec)
            for w, spec in mix.queries
        )

    def update_mix_cost(
        self, extension: Extension, dec: Decomposition, mix: OperationMix
    ) -> float:
        return sum(
            w * self.updatecost.total(extension, spec.i, dec)
            for w, spec in mix.updates
        )

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------

    def mix_cost(
        self,
        extension: Extension,
        dec: Decomposition,
        mix: OperationMix,
        p_up: float,
    ) -> float:
        """Expected page accesses per operation for design ``(X, dec)``."""
        self._check_p(p_up)
        return (1.0 - p_up) * self.query_mix_cost(extension, dec, mix) + (
            p_up
        ) * self.update_mix_cost(extension, dec, mix)

    def nosupport_cost(self, mix: OperationMix, p_up: float) -> float:
        """The same mix evaluated without any access support relation."""
        self._check_p(p_up)
        queries = sum(
            w * self.querycost.qnas(spec.i, spec.j, spec.kind)
            for w, spec in mix.queries
        )
        updates = sum(
            w * self.updatecost.nosupport_total() for w, _spec in mix.updates
        )
        return (1.0 - p_up) * queries + p_up * updates

    def normalized_cost(
        self,
        extension: Extension,
        dec: Decomposition,
        mix: OperationMix,
        p_up: float,
    ) -> float:
        """Design cost divided by the no-support cost of the same mix.

        The paper plots "normalized costs" without defining the
        normalizer; break-even points are invariant to this choice.
        """
        baseline = self.nosupport_cost(mix, p_up)
        if baseline == 0:
            raise CostModelError("degenerate mix: zero baseline cost")
        return self.mix_cost(extension, dec, mix, p_up) / baseline

    # ------------------------------------------------------------------
    # break-even analysis
    # ------------------------------------------------------------------

    def break_even(
        self,
        design_a: tuple[Extension, Decomposition] | None,
        design_b: tuple[Extension, Decomposition] | None,
        mix: OperationMix,
        lo: float = 0.0,
        hi: float = 1.0,
        tolerance: float = 1e-6,
    ) -> float | None:
        """The ``P_up`` where designs a and b swap (None if one dominates).

        ``None`` in place of a design denotes the no-support baseline.
        """

        def cost_of(design, p_up: float) -> float:
            if design is None:
                return self.nosupport_cost(mix, p_up)
            return self.mix_cost(design[0], design[1], mix, p_up)

        def gap(p_up: float) -> float:
            return cost_of(design_a, p_up) - cost_of(design_b, p_up)

        gap_lo, gap_hi = gap(lo), gap(hi)
        if gap_lo == 0:
            return lo
        if gap_hi == 0:
            return hi
        if (gap_lo > 0) == (gap_hi > 0):
            return None
        while hi - lo > tolerance:
            mid = (lo + hi) / 2
            if (gap(mid) > 0) == (gap_lo > 0):
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2

    @staticmethod
    def _check_p(p_up: float) -> None:
        if not 0.0 <= p_up <= 1.0:
            raise CostModelError(f"P_up must lie in [0, 1], got {p_up}")
