"""Schema-wide physical design under a global storage budget.

The paper's advisor question is per path expression; a real database has
*several* hot paths competing for index space.  This module extends the
§7 vision across a whole schema: given, per path, an application
profile, an operation mix, an update probability, and a workload weight,
pick one (extension, decomposition) — or no support at all — for *every*
path such that the total ASR storage stays within a byte budget and the
weighted expected page cost is (approximately) minimized.

The optimization is the classic greedy for budgeted selection: start
every path at the no-support baseline, then repeatedly apply the upgrade
with the best marginal *savings per extra byte* that still fits.  This
is a knapsack-style approximation (optimal per path without a budget; a
good heuristic with one), which matches the "semi-automatic" framing of
the paper's conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.advisor import DesignAdvisor, DesignChoice
from repro.costmodel.opmix import OperationMix
from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.errors import CostModelError


@dataclass(frozen=True)
class PathWorkload:
    """One path expression's share of the schema-wide workload."""

    name: str
    profile: ApplicationProfile
    mix: OperationMix
    p_up: float
    #: Relative frequency of operations against this path (≥ 0).
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise CostModelError(f"workload weight must be ≥ 0, got {self.weight}")


@dataclass
class SchemaDesign:
    """The advisor's result: one design choice per path."""

    choices: dict[str, DesignChoice]
    total_bytes: float
    weighted_cost: float
    baseline_cost: float

    @property
    def savings_factor(self) -> float:
        """Baseline cost divided by the designed cost (≥ 1 when it helps)."""
        if self.weighted_cost == 0:
            return float("inf")
        return self.baseline_cost / self.weighted_cost

    def describe(self) -> str:
        lines = [
            f"schema design: {self.weighted_cost:.1f} weighted pages/op "
            f"(baseline {self.baseline_cost:.1f}, x{self.savings_factor:.1f} "
            f"better) using {self.total_bytes / 1024:.0f} KiB"
        ]
        for name, choice in sorted(self.choices.items()):
            lines.append(f"  {name}: {choice.describe()}")
        return "\n".join(lines)


class SchemaDesignAdvisor:
    """Budgeted design selection across several path workloads."""

    def __init__(
        self,
        workloads: list[PathWorkload],
        system: SystemParameters | None = None,
    ) -> None:
        if not workloads:
            raise CostModelError("at least one path workload is required")
        names = [workload.name for workload in workloads]
        if len(set(names)) != len(names):
            raise CostModelError("path workload names must be unique")
        self.workloads = list(workloads)
        self.system = system or SystemParameters()

    # ------------------------------------------------------------------

    def _candidates(self, workload: PathWorkload) -> list[DesignChoice]:
        advisor = DesignAdvisor(workload.profile, self.system)
        return advisor.enumerate(workload.mix, workload.p_up)

    def plan(self, budget_bytes: float | None = None) -> SchemaDesign:
        """Choose one design per path within the storage budget.

        ``budget_bytes=None`` removes the budget: every path gets its
        individually optimal design (identical to running
        :class:`~repro.costmodel.advisor.DesignAdvisor` per path).
        """
        candidates = {
            workload.name: self._candidates(workload)
            for workload in self.workloads
        }
        weights = {workload.name: workload.weight for workload in self.workloads}
        baselines = {
            name: next(choice for choice in options if choice.extension is None)
            for name, options in candidates.items()
        }
        current: dict[str, DesignChoice] = dict(baselines)
        used = 0.0
        baseline_cost = sum(
            baselines[name].cost * weights[name] for name in baselines
        )

        def upgrade_gain(name: str, choice: DesignChoice) -> tuple[float, float]:
            """(weighted savings, extra bytes) of switching ``name`` to ``choice``."""
            savings = (current[name].cost - choice.cost) * weights[name]
            extra = choice.storage_bytes - current[name].storage_bytes
            return savings, extra

        while True:
            best: tuple[float, str, DesignChoice] | None = None
            for name, options in candidates.items():
                for choice in options:
                    savings, extra = upgrade_gain(name, choice)
                    if savings <= 0:
                        continue
                    if budget_bytes is not None and used + extra > budget_bytes:
                        continue
                    density = savings / extra if extra > 0 else float("inf")
                    if best is None or density > best[0]:
                        best = (density, name, choice)
            if best is None:
                break
            _density, name, choice = best
            used += choice.storage_bytes - current[name].storage_bytes
            current[name] = choice
        weighted_cost = sum(
            current[name].cost * weights[name] for name in current
        )
        return SchemaDesign(current, used, weighted_cost, baseline_cost)
