"""The analytical cost model of the paper (sections 4–6).

Everything is measured in *secondary page accesses*.  Inputs are an
:class:`~repro.costmodel.parameters.ApplicationProfile` (the table of
Figure 3: object counts ``c_i``, defined-attribute counts ``d_i``,
fan-outs ``fan_i``, sharing ``shar_i``, object sizes ``size_i``) and
:class:`~repro.costmodel.parameters.SystemParameters` (page and OID
sizes).  On top of them:

* :mod:`repro.costmodel.derived` — the probabilistic quantities of
  section 4.1 and 5.6 (``RefBy``, ``Ref``, ``path``, …, Eqs. 1–12, 29–30);
* :mod:`repro.costmodel.yao` — Yao's block-access formula;
* :mod:`repro.costmodel.cardinality` — partition cardinalities
  ``#E^{i,j}_X`` for the four extensions (section 4.2);
* :mod:`repro.costmodel.storagecost` — tuple/page sizes and B+ tree
  shapes (sections 4.3 and 5.5);
* :mod:`repro.costmodel.querycost` — query costs with and without access
  support relations (sections 5.6–5.8, Eqs. 31–35);
* :mod:`repro.costmodel.updatecost` — maintenance costs for ``ins_i``
  updates (section 6, Eq. 36 and the cluster-count formulas);
* :mod:`repro.costmodel.opmix` — weighted operation mixes (section 6.4);
* :mod:`repro.costmodel.advisor` — exhaustive physical-design search
  over (extension, decomposition) pairs, the paper's stated application.
"""

from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.costmodel.derived import DerivedQuantities
from repro.costmodel.yao import yao
from repro.costmodel.cardinality import partition_cardinality, extension_cardinality
from repro.costmodel.storagecost import StorageModel
from repro.costmodel.querycost import QueryCostModel
from repro.costmodel.updatecost import UpdateCostModel
from repro.costmodel.opmix import OperationMix, QuerySpec, UpdateSpec, MixCostModel
from repro.costmodel.advisor import DesignAdvisor, DesignChoice
from repro.costmodel.profiling import profile_from_database
from repro.costmodel.schema_advisor import PathWorkload, SchemaDesign, SchemaDesignAdvisor

__all__ = [
    "ApplicationProfile",
    "SystemParameters",
    "DerivedQuantities",
    "yao",
    "partition_cardinality",
    "extension_cardinality",
    "StorageModel",
    "QueryCostModel",
    "UpdateCostModel",
    "OperationMix",
    "QuerySpec",
    "UpdateSpec",
    "MixCostModel",
    "DesignAdvisor",
    "DesignChoice",
    "profile_from_database",
    "PathWorkload",
    "SchemaDesign",
    "SchemaDesignAdvisor",
]
