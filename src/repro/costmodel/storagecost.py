"""Storage costs and B+ tree shape estimates (sections 4.3 and 5.5).

Implements Eqs. 13–28 over type indices (the cost model's ``m = n``
simplification — see the end of section 3 in the paper).

Two printed formulas are corrected here (documented in DESIGN.md):

* Eq. 20 (``pg``, non-leaf page count) is garbled in the available text;
  we use the level sum ``Σ_{l=1..ht} ⌈ap / B+fan^l⌉``, which matches the
  readable ``ht = 2`` case ``1 + ⌈ap / B+fan⌉``.
* Eqs. 25–26 (``Rnlp`` for full/left) divide by the distinct-key counts
  of the *forward* clustering; the backward clustering of ``E^{i,j}`` is
  keyed on ``t_j`` OIDs, so the key counts are ``e_j`` (full) and
  ``RefBy(0, j)`` (left) — symmetric to the printed Eqs. 27–28.
"""

from __future__ import annotations

import math

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.cardinality import partition_cardinality
from repro.costmodel.derived import DerivedQuantities, derived_for
from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.errors import CostModelError


class StorageModel:
    """Sizes and tree shapes of ASR partitions for one profile."""

    def __init__(
        self,
        profile: ApplicationProfile,
        system: SystemParameters | None = None,
    ) -> None:
        self.profile = profile
        self.system = system or SystemParameters()
        self.derived: DerivedQuantities = derived_for(profile)

    # ------------------------------------------------------------------
    # tuple and page geometry (Eqs. 13-16)
    # ------------------------------------------------------------------

    def ats(self, i: int, j: int) -> float:
        """Eq. 13: bytes per tuple of ``E^{i,j}``."""
        return self.system.oid_size * (j - i + 1)

    def atpp(self, i: int, j: int) -> float:
        """Eq. 14: tuples of ``E^{i,j}`` per page."""
        return self.system.page_size // self.ats(i, j)

    def count(self, extension: Extension, i: int, j: int) -> float:
        """``#E^{i,j}_X`` (section 4.2)."""
        return partition_cardinality(self.profile, extension, i, j, self.derived)

    def as_bytes(self, extension: Extension, i: int, j: int) -> float:
        """Eq. 15: partition size in bytes."""
        return self.count(extension, i, j) * self.ats(i, j)

    def ap(self, extension: Extension, i: int, j: int) -> float:
        """Eq. 16: partition data pages."""
        return math.ceil(self.count(extension, i, j) / self.atpp(i, j))

    # ------------------------------------------------------------------
    # whole-relation aggregates
    # ------------------------------------------------------------------

    def relation_bytes(self, extension: Extension, dec: Decomposition) -> float:
        """Σ of partition byte sizes (the non-redundant representation)."""
        self._check_dec(dec)
        return sum(self.as_bytes(extension, a, b) for a, b in dec.partitions)

    def relation_pages(self, extension: Extension, dec: Decomposition) -> float:
        self._check_dec(dec)
        return sum(self.ap(extension, a, b) for a, b in dec.partitions)

    def _check_dec(self, dec: Decomposition) -> None:
        if dec.m != self.profile.n:
            raise CostModelError(
                f"decomposition {dec} does not cover type indices 0..{self.profile.n}"
            )

    # ------------------------------------------------------------------
    # B+ tree shape (Eqs. 19-20)
    # ------------------------------------------------------------------

    def ht(self, extension: Extension, i: int, j: int) -> float:
        """Eq. 19: tree height above the leaves."""
        pages = self.ap(extension, i, j)
        if pages <= 1:
            return 0.0 if pages < 1 else 1.0
        return math.ceil(math.log(pages) / math.log(self.system.btree_fanout))

    def pg(self, extension: Extension, i: int, j: int) -> float:
        """Eq. 20 (generalized): non-leaf pages of the tree."""
        pages = self.ap(extension, i, j)
        height = int(self.ht(extension, i, j))
        fanout = self.system.btree_fanout
        total = 0.0
        for level in range(1, height + 1):
            total += math.ceil(pages / fanout**level)
        return total

    # ------------------------------------------------------------------
    # leaf pages per key (Eqs. 21-28)
    # ------------------------------------------------------------------

    def _forward_keys(self, extension: Extension, i: int) -> float:
        """Distinct first-column keys of ``E^{i,j}_X`` (forward clustering).

        Partitions always have ``i < n``, so ``d_i`` and ``Ref(i, n)`` are
        well defined.
        """
        q = self.derived
        if extension in (Extension.FULL, Extension.RIGHT):
            return self.profile.d_(i)  # Eqs. 21-22
        if extension is Extension.CANONICAL:  # Eq. 23
            return self._ref_to_n(i) * q.p_refby(0, i)
        # Eq. 24 (left): objects of t_i reached from t_0.
        return self._refby0(i)

    def _backward_keys(self, extension: Extension, j: int) -> float:
        """Distinct last-column keys of ``E^{i,j}_X`` (backward clustering)."""
        q = self.derived
        if extension is Extension.FULL:  # Eq. 25 corrected
            return self.profile.e_(j)
        if extension is Extension.LEFT:  # Eq. 26 corrected
            return self._refby0(j)
        if extension is Extension.CANONICAL:  # Eq. 27
            return self._ref_to_n(j) * q.p_refby(0, j)
        # Eq. 28 (right): objects of t_j reaching t_n; for j = n these are
        # the referenced t_n objects themselves.
        return self._ref_to_n(j) if j < self.profile.n else self.profile.e_(j)

    def _ref_to_n(self, i: int) -> float:
        """``Ref(i, n)`` extended with ``Ref(n, n) = c_n``."""
        n = self.profile.n
        return self.derived.ref(i, n) if i < n else self.profile.c_(n)

    def _refby0(self, i: int) -> float:
        if i == 0:
            return self.profile.d_(0)
        return self.derived.refby(0, i)

    def nlp(self, extension: Extension, i: int, j: int) -> float:
        """Eqs. 21-24: leaf pages per key of the forward clustering."""
        return self._leaf_pages_per_key(
            self.as_bytes(extension, i, j), self._forward_keys(extension, i)
        )

    def rnlp(self, extension: Extension, i: int, j: int) -> float:
        """Eqs. 25-28: leaf pages per key of the backward clustering."""
        return self._leaf_pages_per_key(
            self.as_bytes(extension, i, j), self._backward_keys(extension, j)
        )

    def _leaf_pages_per_key(self, byte_size: float, keys: float) -> float:
        if byte_size <= 0:
            return 0.0
        if keys < 1:
            keys = 1.0
        return math.ceil(byte_size / (self.system.page_size * keys))

    # ------------------------------------------------------------------
    # object pages (Eqs. 17-18)
    # ------------------------------------------------------------------

    def opp(self, i: int) -> float:
        """Eq. 17: objects of ``t_i`` per page (clamped to ≥ 1)."""
        return max(1.0, self.system.page_size // self.profile.size_(i))

    def op(self, i: int) -> float:
        """Eq. 18: pages storing the ``t_i`` extent."""
        return math.ceil(self.profile.c_(i) / self.opp(i))
