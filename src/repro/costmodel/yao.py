"""Yao's block-access formula (section 5.6; Yao, CACM 1977).

``yao(k, m, n)`` estimates the number of pages touched when ``k`` out of
``n`` uniformly distributed records are fetched from ``m`` pages holding
``n/m`` records each::

    y(k, m, n) = ⌈ m · (1 − Π_{i=1}^{k} (n·(1−1/m) − i + 1) / (n − i + 1)) ⌉

Degenerate cases are resolved to their limits: no pages or no records →
0; ``k ≥ n − n/m + 1`` forces every page to be touched (some factor in
the product reaches zero).
"""

from __future__ import annotations

import math


def yao(k: float, m: float, n: float) -> float:
    """Pages touched fetching ``k`` of ``n`` records spread over ``m`` pages.

    Arguments may be fractional (the cost model chains expectations); the
    result is the paper's ceiling of the expected page count, capped at
    ``m``.
    """
    if m <= 0 or n <= 0 or k <= 0:
        return 0.0
    k = min(k, n)
    if m == 1:
        return 1.0
    records_elsewhere = n * (1.0 - 1.0 / m)
    product = 1.0
    steps = int(math.ceil(k))
    for i in range(1, steps + 1):
        numerator = records_elsewhere - i + 1
        denominator = n - i + 1
        if numerator <= 0 or denominator <= 0:
            product = 0.0
            break
        product *= numerator / denominator
        if product < 1e-12:
            product = 0.0
            break
    # Guard the ceiling against floating-point noise (e.g. 1.0 computed
    # as 1.0000000000000009 must not become 2 pages).
    expected = m * (1.0 - product)
    return float(min(math.ceil(expected - 1e-9), math.ceil(m)))
