"""Yao's block-access formula (section 5.6; Yao, CACM 1977).

``yao(k, m, n)`` estimates the number of pages touched when ``k`` out of
``n`` uniformly distributed records are fetched from ``m`` pages holding
``n/m`` records each::

    y(k, m, n) = ⌈ m · (1 − Π_{i=1}^{k} (n·(1−1/m) − i + 1) / (n − i + 1)) ⌉

Degenerate cases are resolved to their limits: no pages or no records →
0; ``k ≥ n − n/m + 1`` forces every page to be touched (some factor in
the product reaches zero).

Yao's product is only defined for integer ``k``.  The cost model chains
expectations, so fractional ``k`` is routine; for those the estimate is
the linear interpolation between the two neighbouring integer
evaluations ``y(⌊k⌋)`` and ``y(⌈k⌉)``.  (The formula used to round the
product up to ``⌈k⌉`` steps, which systematically over-estimated — a
fetch of 2.1 records was priced as a fetch of 3.)
"""

from __future__ import annotations

import math


def _yao_exact(steps: int, m: float, n: float) -> float:
    """Yao's formula for an *integer* number of fetched records."""
    if steps <= 0:
        return 0.0
    records_elsewhere = n * (1.0 - 1.0 / m)
    product = 1.0
    for i in range(1, steps + 1):
        numerator = records_elsewhere - i + 1
        denominator = n - i + 1
        if numerator <= 0 or denominator <= 0:
            product = 0.0
            break
        product *= numerator / denominator
        if product < 1e-12:
            product = 0.0
            break
    # Guard the ceiling against floating-point noise (e.g. 1.0 computed
    # as 1.0000000000000009 must not become 2 pages).
    expected = m * (1.0 - product)
    return float(min(math.ceil(expected - 1e-9), math.ceil(m)))


def yao(k: float, m: float, n: float) -> float:
    """Pages touched fetching ``k`` of ``n`` records spread over ``m`` pages.

    Arguments may be fractional (the cost model chains expectations).
    Integer ``k`` evaluates the paper's ceiling of the expected page
    count, capped at ``m``; fractional ``k`` interpolates linearly
    between the evaluations at ``⌊k⌋`` and ``⌈k⌉``, so the estimate is
    monotone in ``k`` and agrees with the exact formula at integers.
    """
    if m <= 0 or n <= 0 or k <= 0:
        return 0.0
    k = min(k, n)
    if m == 1:
        return 1.0
    lo = math.floor(k)
    hi = math.ceil(k)
    y_hi = _yao_exact(hi, m, n)
    if lo == hi:
        return y_hi
    y_lo = _yao_exact(lo, m, n)
    return y_lo + (k - lo) * (y_hi - y_lo)
