"""Update (maintenance) costs for ``ins_i`` operations (section 6).

``ins_i`` inserts an object of type ``t_{i+1}`` into the (set-valued)
attribute connecting ``t_i`` to ``t_{i+1}``.  Its total cost decomposes
into (section 6):

1. updating the object representation itself — the paper puts this at 3
   page accesses (read the object, extend the set, write back);
2. **searching** the identifiers of the new/affected paths
   (``search``, Eq. 36) — the extension determines how much of the
   neighbourhood is already in the ASR and how much must be found in the
   data: canonical may need a forward *and* a backward data search, left
   only a forward search, right only a backward (extent-scan) search,
   full none at all;
3. **updating the ASR partitions** (``aup``) — per partition, descend the
   forward-clustered tree, read and write the affected leaf clusters,
   then the same for the backward-clustered tree.  The number of affected
   clusters per tree is the extension-specific ``qfw``/``qbw`` count of
   sections 6.2.1–6.2.4 (a *cluster* is the group of tuples sharing one
   key).

Partitions whose cluster count is zero are skipped entirely (the printed
formula adds one root access per partition unconditionally; a partition
that provably contains no affected cluster — e.g. any partition not
covering ``(i, i+1)`` under the full extension — is never touched).
"""

from __future__ import annotations

import math

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.derived import DerivedQuantities, derived_for
from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.costmodel.querycost import QueryCostModel
from repro.costmodel.storagecost import StorageModel
from repro.costmodel.yao import yao
from repro.errors import CostModelError


class UpdateCostModel:
    """Page-access estimates for maintaining one ASR under ``ins_i``."""

    #: Page accesses for the object-representation update itself
    #: (section 6: "the cost for updating o_i.A_i amounts to 3").
    object_update_cost: float = 3.0

    def __init__(
        self,
        profile: ApplicationProfile,
        system: SystemParameters | None = None,
        storage: StorageModel | None = None,
        querycost: QueryCostModel | None = None,
    ) -> None:
        self.profile = profile
        self.system = system or SystemParameters()
        self.storage = storage or StorageModel(profile, self.system)
        self.querycost = querycost or QueryCostModel(profile, self.system, self.storage)
        self.derived: DerivedQuantities = derived_for(profile)

    # ------------------------------------------------------------------
    # search costs (Eq. 36)
    # ------------------------------------------------------------------

    def search(self, extension: Extension, i: int, dec: Decomposition) -> float:
        """Eq. 36: pages read to find the paths affected by ``ins_i``."""
        self._check_i(i)
        n = self.profile.n
        q = self.derived
        qc = self.querycost
        sup_fw = qc.qsup(extension, i, i + 1, "fw", dec)
        sup_bw = qc.qsup(extension, i, i + 1, "bw", dec)
        if extension is Extension.CANONICAL:
            forward = qc.qnas(i + 1, n, "fw") * q.p_nopath(i + 1) if i + 1 < n else 0.0
            backward = (
                qc.qnas(0, i, "bw") * q.p_ref(i + 1, n) * q.p_nopath(i)
                if i > 0
                else 0.0
            )
            return forward + sup_bw + backward + sup_fw
        if extension is Extension.FULL:
            return min(sup_fw, sup_bw)
        if extension is Extension.LEFT:
            forward = (
                qc.qnas(i + 1, n, "fw")
                * (1.0 - q.p_refby(0, i + 1))
                * q.p_refby(0, i)
                if i + 1 < n
                else 0.0
            )
            return forward + min(sup_fw, sup_bw)
        if extension is Extension.RIGHT:
            scan = sum(self.storage.op(l) for l in range(0, i + 1))
            backward = scan * (1.0 - q.p_ref(i, n)) * q.p_ref(i + 1, n)
            return backward + min(sup_fw, sup_bw)
        raise CostModelError(f"unknown extension {extension!r}")

    # ------------------------------------------------------------------
    # cluster counts (sections 6.2.1-6.2.4)
    # ------------------------------------------------------------------

    def qfw(self, extension: Extension, i: int, a: int, b: int) -> float:
        """Clusters to update in the forward tree of partition ``(a, b)``."""
        self._check_i(i)
        q = self.derived
        n = self.profile.n
        if extension is Extension.CANONICAL:
            if a <= i:
                return self._ref1(a, i) * q.p_refby(0, a) * q.p_ref(i + 1, n)
            return self._refby1(i + 1, a) * q.p_refby(0, i) * q.p_ref(a, n)
        if extension is Extension.FULL:
            if a <= i < b:
                return self._ref1(a, i) + sum(
                    q.p_lb(l - 1, l) * self._ref1(l, i) for l in range(a + 1, i + 1)
                )
            return 0.0
        if extension is Extension.LEFT:
            if b <= i:
                return 0.0
            if a <= i < b:
                return self._ref1(a, i) * q.p_refby(0, a)
            return q.p_lb(0, a) * self._refby1(i + 1, a) * q.p_refby(0, i)
        if extension is Extension.RIGHT:
            if b <= i:
                segment = self._ref1(a, i) + sum(
                    q.p_lb(l - 1, l) * self._ref1(l, i) for l in range(a + 1, b)
                )
                return q.p_rb(b, n) * q.p_ref(i + 1, n) * segment
            if a <= i < b:
                segment = self._ref1(a, i) + sum(
                    q.p_lb(l - 1, l) * self._ref1(l, i) for l in range(a + 1, i + 1)
                )
                return q.p_ref(i + 1, n) * segment
            return 0.0
        raise CostModelError(f"unknown extension {extension!r}")

    def qbw(self, extension: Extension, i: int, a: int, b: int) -> float:
        """Clusters to update in the backward tree of partition ``(a, b)``."""
        self._check_i(i)
        q = self.derived
        n = self.profile.n
        if extension is Extension.CANONICAL:
            if b <= i:
                return self._ref1(b, i) * q.p_refby(0, b) * q.p_ref(i + 1, n)
            return self._refby1(i + 1, b) * q.p_refby(0, i) * q.p_ref(b, n)
        if extension is Extension.FULL:
            if a <= i < b:
                return self._refby1(i + 1, b) + sum(
                    q.p_rb(l, l + 1) * self._refby1(i + 1, l)
                    for l in range(i + 2, b)
                )
            return 0.0
        if extension is Extension.LEFT:
            if b <= i:
                return 0.0
            if a <= i < b:
                tail = self._refby1(i + 1, b) + sum(
                    q.p_rb(l, l + 1) * self._refby1(i + 1, l)
                    for l in range(i + 2, b)
                )
                return q.p_refby(0, i) * tail
            tail = self._refby1(i + 1, b) + sum(
                q.p_rb(l, l + 1) * self._refby1(i + 1, l) for l in range(a + 1, b)
            )
            return q.p_refby(0, i) * q.p_lb(0, a) * tail
        if extension is Extension.RIGHT:
            if b <= i:
                return q.p_rb(b, n) * self._ref1(b, i) * q.p_ref(i + 1, n)
            if a <= i < b:
                return self._refby1(i + 1, b) * q.p_ref(b, n)
            return 0.0
        raise CostModelError(f"unknown extension {extension!r}")

    # ------------------------------------------------------------------
    # partition update cost (section 6.2)
    # ------------------------------------------------------------------

    def aup(self, extension: Extension, i: int, dec: Decomposition) -> float:
        """Pages to update all partitions' two trees after ``ins_i``."""
        self._check_i(i)
        if dec.m != self.profile.n:
            raise CostModelError(f"decomposition {dec} does not span 0..{self.profile.n}")
        storage = self.storage
        fanout = self.system.btree_fanout
        total = 0.0
        for a, b in dec.partitions:
            pages = storage.ap(extension, a, b)
            count = storage.count(extension, a, b)
            interior = storage.pg(extension, a, b) - 1
            for clusters in (self.qfw(extension, i, a, b), self.qbw(extension, i, a, b)):
                if clusters <= 0:
                    continue
                clusters = math.ceil(clusters)
                total += 1.0
                total += yao(clusters, interior, interior * fanout)
                total += yao(clusters, pages, count) * 2.0
        return total

    # ------------------------------------------------------------------
    # totals
    # ------------------------------------------------------------------

    def total(self, extension: Extension, i: int, dec: Decomposition) -> float:
        """Object update + path search + ASR partition updates."""
        return (
            self.object_update_cost
            + self.search(extension, i, dec)
            + self.aup(extension, i, dec)
        )

    def nosupport_total(self) -> float:
        """Update cost without any ASR: just the object update."""
        return self.object_update_cost

    # ------------------------------------------------------------------
    def _ref1(self, l: int, i: int) -> float:
        """``Ref(l, i, 1)`` with ``Ref(i, i, ·) = 1`` (the object itself)."""
        return 1.0 if l >= i else self.derived.ref_k(l, i, 1.0)

    def _refby1(self, start: int, l: int) -> float:
        """``RefBy(i+1, l, 1)`` with ``RefBy(l, l, ·) = 1``."""
        return 1.0 if l <= start else self.derived.refby_k(start, l, 1.0)

    def _check_i(self, i: int) -> None:
        if not 0 <= i < self.profile.n:
            raise CostModelError(
                f"ins_{i} out of range: the edge must lie within the path "
                f"(0 ≤ i < {self.profile.n})"
            )
