"""Query costs (sections 5.6–5.8, Eqs. 31–35).

``qnas`` — unsupported evaluation on the clustered object representation:

* forward: one page for the start object plus, per intermediate level,
  Yao's estimate of the pages holding the objects reachable from a single
  start (``RefBy(i, l, 1)``);
* backward: an exhaustive scan of the ``t_i`` extent (``op_i``) plus, per
  intermediate level, the pages holding everything reachable from all
  ``d_i`` defined origins (``RefBy(i, l, d_i)``).

``qsup`` — evaluation over a decomposed access support relation, the
three-case split of Eqs. 33–34:

1. the query endpoint lies on a partition border — one root-to-leaf
   descent plus the leaf pages of a single key (``ht + nlp``);
2. the endpoint lies strictly inside a partition — every page of that
   partition must be inspected (``ap``);
3. each further partition towards the other endpoint — the root, the
   interior pages covering the frontier's keys (Yao over ``pg − 1``
   pages), and the leaf pages holding the frontier's tuples (Yao over
   ``ap`` pages).

``q`` — the applicability dispatch of Eq. 35 (falling back to ``qnas``
when the extension cannot answer the query).
"""

from __future__ import annotations

import math

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.costmodel.derived import DerivedQuantities, derived_for
from repro.costmodel.parameters import ApplicationProfile, SystemParameters
from repro.costmodel.storagecost import StorageModel
from repro.costmodel.yao import yao
from repro.errors import CostModelError

_KINDS = ("fw", "bw")


class QueryCostModel:
    """Page-access estimates for ``Q_{i,j}(fw|bw)`` under one profile."""

    def __init__(
        self,
        profile: ApplicationProfile,
        system: SystemParameters | None = None,
        storage: StorageModel | None = None,
    ) -> None:
        self.profile = profile
        self.system = system or SystemParameters()
        self.storage = storage or StorageModel(profile, self.system)
        self.derived: DerivedQuantities = derived_for(profile)

    # ------------------------------------------------------------------
    # unsupported evaluation (Eqs. 31-32)
    # ------------------------------------------------------------------

    def qnas(self, i: int, j: int, kind: str) -> float:
        """Eq. 31 (fw) / Eq. 32 (bw); 0 when the range is empty (i = j)."""
        self._check_kind(kind)
        if i == j:
            return 0.0
        if not 0 <= i < j <= self.profile.n:
            raise CostModelError(f"invalid query range ({i}, {j})")
        q = self.derived
        if kind == "fw":
            total = 1.0
            subset = 1.0
        else:
            total = self.storage.op(i)
            subset = self.profile.d_(i)
        for l in range(i + 1, j):
            reached = math.ceil(q.refby_k(i, l, subset))
            total += yao(reached, self.storage.op(l), self.profile.c_(l))
        return total

    # ------------------------------------------------------------------
    # supported evaluation (Eqs. 33-34)
    # ------------------------------------------------------------------

    def qsup(
        self,
        extension: Extension,
        i: int,
        j: int,
        kind: str,
        dec: Decomposition,
    ) -> float:
        """Eq. 33 (fw) / Eq. 34 (bw) over decomposition ``dec``."""
        self._check_kind(kind)
        if not 0 <= i < j <= self.profile.n:
            raise CostModelError(f"invalid query range ({i}, {j})")
        if dec.m != self.profile.n:
            raise CostModelError(f"decomposition {dec} does not span 0..{self.profile.n}")
        if kind == "fw":
            return self._qsup_forward(extension, i, j, dec)
        return self._qsup_backward(extension, i, j, dec)

    def _qsup_forward(
        self, extension: Extension, i: int, j: int, dec: Decomposition
    ) -> float:
        storage, q = self.storage, self.derived
        fanout = self.system.btree_fanout
        total = 0.0
        for a, b in dec.partitions:
            if a == i:
                total += storage.ht(extension, a, b) + storage.nlp(extension, a, b)
            elif a < i < b:
                total += storage.ap(extension, a, b)
            elif i < a < j:
                frontier = math.ceil(self._refby1(i, a))
                interior = storage.pg(extension, a, b) - 1
                total += 1.0
                total += yao(frontier, interior, interior * fanout)
                total += yao(
                    frontier * storage.nlp(extension, a, b),
                    storage.ap(extension, a, b),
                    storage.count(extension, a, b),
                )
        return total

    def _qsup_backward(
        self, extension: Extension, i: int, j: int, dec: Decomposition
    ) -> float:
        storage, q = self.storage, self.derived
        fanout = self.system.btree_fanout
        total = 0.0
        for a, b in dec.partitions:
            if b == j:
                total += storage.ht(extension, a, b) + storage.rnlp(extension, a, b)
            elif a < j < b:
                total += storage.ap(extension, a, b)
            elif i < b < j:
                frontier = math.ceil(self._ref1(b, j))
                interior = storage.pg(extension, a, b) - 1
                total += 1.0
                total += yao(frontier, interior, interior * fanout)
                total += yao(
                    frontier * storage.rnlp(extension, a, b),
                    storage.ap(extension, a, b),
                    storage.count(extension, a, b),
                )
        return total

    def _refby1(self, i: int, l: int) -> float:
        """``RefBy(i, l, 1)`` extended with ``RefBy(i, i, ·) = 1``."""
        return 1.0 if l == i else self.derived.refby_k(i, l, 1.0)

    def _ref1(self, l: int, j: int) -> float:
        """``Ref(l, j, 1)`` extended with ``Ref(j, j, ·) = 1``."""
        return 1.0 if l == j else self.derived.ref_k(l, j, 1.0)

    # ------------------------------------------------------------------
    # value-range extension (beyond the paper)
    # ------------------------------------------------------------------

    def qsup_range(
        self,
        extension: Extension,
        i: int,
        selectivity: float,
        dec: Decomposition,
    ) -> float:
        """Supported cost of a terminal value-range query (``j = n``).

        A range query replaces the single-key probe into the final
        partition's backward clustering with a leaf-range scan covering a
        ``selectivity`` fraction of the partition's data pages; every
        partition further left is then driven by the matched frontier,
        costed with the same Yao terms as Eq. 34 but with frontier size
        ``selectivity · (distinct last-column keys)`` instead of 1.

        This quantity has no counterpart in the paper (which only prices
        point lookups); it is the analytical twin of
        :class:`repro.query.queries.ValueRangeQuery`.
        """
        if not 0.0 <= selectivity <= 1.0:
            raise CostModelError(f"selectivity must lie in [0, 1], got {selectivity}")
        n = self.profile.n
        if not 0 <= i < n:
            raise CostModelError(f"invalid query origin {i}")
        if dec.m != n:
            raise CostModelError(f"decomposition {dec} does not span 0..{n}")
        storage = self.storage
        fanout = self.system.btree_fanout
        total = 0.0
        matched = 0.0
        for a, b in reversed(dec.partitions):
            if b <= i:
                break
            if b == n:
                # Leaf-range scan over the value clustering.
                pages = storage.ap(extension, a, b)
                total += storage.ht(extension, a, b)
                total += max(1.0, math.ceil(selectivity * pages))
                matched = math.ceil(
                    selectivity * storage._backward_keys(extension, b)
                )
            else:
                frontier = max(1.0, math.ceil(self._ref1(b, n) * matched))
                frontier = min(frontier, self.profile.c_(b))
                interior = storage.pg(extension, a, b) - 1
                total += 1.0
                total += yao(frontier, interior, interior * fanout)
                total += yao(
                    frontier * storage.rnlp(extension, a, b),
                    storage.ap(extension, a, b),
                    storage.count(extension, a, b),
                )
        return total

    # ------------------------------------------------------------------
    # dispatch (Eq. 35)
    # ------------------------------------------------------------------

    def q(
        self,
        extension: Extension,
        i: int,
        j: int,
        kind: str,
        dec: Decomposition,
    ) -> float:
        """Eq. 35: supported cost when the extension applies, else ``qnas``."""
        if extension.supports_query(i, j, self.profile.n):
            return self.qsup(extension, i, j, kind, dec)
        return self.qnas(i, j, kind)

    @staticmethod
    def _check_kind(kind: str) -> None:
        if kind not in _KINDS:
            raise CostModelError(f"query kind must be 'fw' or 'bw', got {kind!r}")
