"""Extract an application profile from a live object base.

The paper's conclusion: "in a 'real' database application one should
periodically verify that the once envisioned usage profile actually
remains valid under operation".  That requires measuring the Figure 3
parameters — ``c_i``, ``d_i``, ``fan_i``, ``shar_i`` — from the *actual*
object base rather than trusting design-time estimates.

:func:`profile_from_database` walks the extents along an arbitrary path
expression (any schema, set-valued or single-valued steps) and returns
the realized :class:`~repro.costmodel.parameters.ApplicationProfile`,
ready to feed the cost model or the design advisor.
"""

from __future__ import annotations

from repro.costmodel.parameters import ApplicationProfile
from repro.errors import CostModelError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.gom.types import NULL, AtomicType


def profile_from_database(
    db: ObjectBase,
    path: PathExpression,
    object_sizes: dict[str, int] | None = None,
    default_size: int = 100,
) -> ApplicationProfile:
    """Measure the Figure 3 parameters of ``path`` over ``db``.

    ``c_i`` counts the extent of ``t_i`` (atomic terminals count the
    distinct values stored in the preceding attribute — atomic values
    have no extent of their own); ``d_i`` counts defined ``A_{i+1}``
    attributes; ``fan_i`` averages references per defined attribute
    (set members for set occurrences); ``shar_i`` averages references
    per distinct hit target.  Sizes come from ``object_sizes`` (by type
    name) or ``default_size``.
    """
    n = path.n
    sizes = object_sizes or {}
    c: list[float] = []
    d: list[float] = []
    fan: list[float] = []
    shar: list[float] = []
    size: list[float] = []
    for i, type_name in enumerate(path.types):
        gom_type = db.schema.lookup(type_name)
        if isinstance(gom_type, AtomicType):
            count = len(_terminal_values(db, path))
            size.append(float(sizes.get(type_name, gom_type.byte_size)))
        else:
            count = len(db.extent(type_name))
            size.append(float(sizes.get(type_name, default_size)))
        c.append(float(max(count, 1)))
    for i, step in enumerate(path.steps):
        owners = [
            oid
            for oid in db.extent(step.domain_type)
            if db.attr(oid, step.attribute) is not NULL
        ]
        d.append(float(len(owners)))
        references = 0
        targets: set[Cell] = set()
        for owner in owners:
            value = db.attr(owner, step.attribute)
            if step.is_set_occurrence:
                assert isinstance(value, OID)
                members = db.members(value)
                references += len(members)
                targets.update(members)
            else:
                references += 1
                targets.add(value)
        fan.append(references / len(owners) if owners else 0.0)
        shar.append(references / len(targets) if targets else 0.0)
        if d[-1] > c[i]:
            raise CostModelError(
                f"measured d_{i} exceeds extent of {step.domain_type!r}; "
                "the object base is inconsistent"
            )
    return ApplicationProfile(
        c=tuple(c),
        d=tuple(d),
        fan=tuple(fan),
        size=tuple(size),
        shar=tuple(shar),
    )


def _terminal_values(db: ObjectBase, path: PathExpression) -> set[Cell]:
    """Distinct atomic values stored at the path's terminal attribute."""
    step = path.steps[-1]
    values: set[Cell] = set()
    for oid in db.extent(step.domain_type):
        value = db.attr(oid, step.attribute)
        if value is not NULL:
            values.add(value)
    return values
