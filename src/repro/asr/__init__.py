"""Access support relations — the paper's core contribution (section 3).

The subpackage provides:

* :mod:`repro.asr.relation` — a small relational algebra (tuples with
  NULLs, natural and outer joins on the last↔first column) in which the
  extension definitions are expressed;
* :mod:`repro.asr.auxiliary` — the auxiliary relations ``E_j`` of
  Definition 3.3;
* :mod:`repro.asr.extensions` — the canonical / full / left- /
  right-complete extensions (Definitions 3.4–3.7);
* :mod:`repro.asr.decomposition` — decompositions and Theorem 3.9;
* :mod:`repro.asr.asr` — the stored form: partitions in two redundant
  B+ trees (section 5.2);
* :mod:`repro.asr.maintenance` — incremental updates (section 6);
* :mod:`repro.asr.journal` — crash-consistency states and write-ahead
  intent journals;
* :mod:`repro.asr.manager` — keeps a family of ASRs consistent with an
  object base by subscribing to its change events;
* :mod:`repro.asr.sharing` — shared partitions between overlapping path
  expressions (section 5.4).
"""

from repro.asr.relation import Relation, JoinKind
from repro.asr.auxiliary import auxiliary_relations
from repro.asr.extensions import Extension, build_extension
from repro.asr.decomposition import Decomposition
from repro.asr.asr import AccessSupportRelation, StoredPartition
from repro.asr.journal import ASRState, IntentJournal
from repro.asr.manager import ASRManager
from repro.asr.sharing import SharedASRBundle, SharedSegment, best_shared_design, shareable_segments
from repro.asr.adaptive import AdaptiveDesigner, TuningDecision, WorkloadRecorder

__all__ = [
    "Relation",
    "JoinKind",
    "auxiliary_relations",
    "Extension",
    "build_extension",
    "Decomposition",
    "AccessSupportRelation",
    "StoredPartition",
    "ASRState",
    "IntentJournal",
    "ASRManager",
    "SharedSegment",
    "SharedASRBundle",
    "shareable_segments",
    "best_shared_design",
    "WorkloadRecorder",
    "AdaptiveDesigner",
    "TuningDecision",
]
