"""ASRManager — keeps a family of ASRs consistent with an object base.

The manager subscribes to the object base's change events and, for every
registered access support relation, computes the dirty region and applies
the neighbourhood delta (:mod:`repro.asr.maintenance`).  It is the
run-time embodiment of section 6: after any sequence of updates, each
managed ASR equals what a from-scratch rebuild would produce (verified by
:meth:`check_consistency` and the property-based test suite).

Maintenance can be charged to an :class:`~repro.context.ExecutionContext`
(or a bare buffer scope) to *measure* update costs on the storage
simulator, mirroring the analytical update-cost model of
:mod:`repro.costmodel.updatecost`.

Two maintenance regimes exist:

* **eager** (the default): every primitive event is analyzed and its
  neighbourhood delta applied immediately — one tree round-trip per
  event per ASR, the regime section 6 prices;
* **batched** (:meth:`batch` / :meth:`flush`): events only *accumulate*
  their dirty regions in a per-ASR queue; the regions are coalesced
  (set-union of anchors and dead OIDs) and, at the flush boundary, one
  ``neighbourhood_delta`` per ASR is computed against the final object
  graph and applied under a single buffer scope.  Overlapping events
  therefore charge their shared pages once, and intermediate states
  that a later event undoes never touch the trees at all.

A manager holds its event subscription until :meth:`close` is called
(or its ``with`` block exits); a closed manager no longer maintains its
ASRs.  When the manager is constructed with an ``ExecutionContext``,
pending batches are flushed automatically when that context closes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.asr.maintenance import (
    DirtyRegion,
    analyze_event,
    merge_regions,
    neighbourhood_delta,
)
from repro.context import ExecutionContext
from repro.errors import ObjectBaseError
from repro.gom.database import ObjectBase
from repro.gom.events import Event
from repro.gom.paths import PathExpression


class ASRManager:
    """Owns access support relations over one object base.

    Parameters
    ----------
    db:
        The object base whose change events drive maintenance.
    context:
        Optional :class:`~repro.context.ExecutionContext` charged for
        tree maintenance.  Setting the legacy ``manager.buffer``
        attribute to a raw buffer scope remains supported and takes
        precedence while set.
    """

    def __init__(self, db: ObjectBase, context: ExecutionContext | None = None) -> None:
        self.db = db
        self.asrs: list[AccessSupportRelation] = []
        self._suspended = 0
        #: Optional page-access buffer charged for tree maintenance
        #: (legacy spelling; prefer passing an ExecutionContext).
        self.buffer = None
        self.context = context
        self._batch_depth = 0
        #: Coalesced pending dirty regions, one per batched ASR
        #: (keyed by identity — ASRs are not hashable by value).
        self._pending: dict[int, tuple[AccessSupportRelation, DirtyRegion]] = {}
        self._closed = False
        db.subscribe(self._on_event)
        if context is not None:
            context.add_exit_hook(self.flush)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def create(
        self,
        path: PathExpression,
        extension: Extension = Extension.FULL,
        decomposition: Decomposition | None = None,
    ) -> AccessSupportRelation:
        """Build and register an ASR for ``path`` from the current state."""
        asr = AccessSupportRelation.build(self.db, path, extension, decomposition)
        self.asrs.append(asr)
        return asr

    def register(self, asr: AccessSupportRelation) -> None:
        """Adopt an externally built ASR (assumed consistent right now)."""
        self.asrs.append(asr)

    def drop(self, asr: AccessSupportRelation) -> None:
        try:
            self.asrs.remove(asr)
        except ValueError:
            raise ObjectBaseError("ASR is not registered with this manager") from None
        self._pending.pop(id(asr), None)

    def find(
        self, path: PathExpression, extension: Extension | None = None
    ) -> list[AccessSupportRelation]:
        """Registered ASRs over ``path`` (optionally of one extension)."""
        return [
            asr
            for asr in self.asrs
            if asr.path == path and (extension is None or asr.extension is extension)
        ]

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush pending work and stop maintaining: unsubscribe from the db.

        Idempotent.  A closed manager keeps its ASR list for inspection
        but no longer reacts to object-base events.
        """
        if self._closed:
            return
        self.flush()
        self._closed = True
        try:
            self.db.unsubscribe(self._on_event)
        except ValueError:  # pragma: no cover - subscription already gone
            pass

    def __enter__(self) -> "ASRManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        return None

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _charge_target(self):
        """Where maintenance page accesses go (legacy buffer wins)."""
        if self.buffer is not None:
            return self.buffer
        return self.context

    def _on_event(self, event: Event) -> None:
        if self._closed or self._suspended:
            return
        if self._batch_depth:
            self._enqueue(event)
            return
        target = self._charge_target()
        for asr in self.asrs:
            region = analyze_event(self.db, asr.path, event)
            if not region:
                continue
            added, removed = neighbourhood_delta(
                self.db, asr.path, asr.extension, asr.extension_relation, region
            )
            if added or removed:
                asr.apply_delta(added, removed, target)

    def _enqueue(self, event: Event) -> None:
        """Accumulate the event's dirty regions without touching trees.

        The region must be computed *now* (it reads event-time graph
        state, e.g. the members of a collection being detached), but the
        expensive neighbourhood recomputation and all tree mutations are
        deferred to :meth:`flush`.
        """
        for asr in self.asrs:
            region = analyze_event(self.db, asr.path, event)
            if not region:
                continue
            key = id(asr)
            if key in self._pending:
                _, pending = self._pending[key]
                self._pending[key] = (asr, merge_regions(pending, region))
            else:
                self._pending[key] = (asr, region)

    @contextmanager
    def batch(self) -> Iterator["ASRManager"]:
        """Defer maintenance inside the block; flush once on exit.

        Unlike :meth:`suspended`, this does **not** fall back to full
        rebuilds: the coalesced dirty regions are maintained exactly,
        just with one tree round-trip per ASR instead of one per event::

            with manager.batch():
                db.set_insert(parts, bolt)
                db.set_insert(parts, nut)
            # <- one coalesced neighbourhood delta applied here

        Nesting is allowed; only the outermost exit flushes.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if not self._batch_depth:
                self.flush()

    def flush(self, context=None) -> int:
        """Apply all pending coalesced deltas under a single buffer scope.

        Returns the number of extension rows that changed (added plus
        removed, over all ASRs).  Page accesses are charged to
        ``context`` when given, else to the manager's context / legacy
        buffer.  No-op when nothing is pending.
        """
        if not self._pending:
            return 0
        pending, self._pending = self._pending, {}
        target = context if context is not None else self._charge_target()
        changed = 0
        if isinstance(target, ExecutionContext):
            with target.operation("asr.flush") as scope:
                changed = self._apply_pending(pending, scope)
        else:
            # A raw buffer scope (or None) is already a single scope.
            changed = self._apply_pending(pending, target)
        return changed

    def _apply_pending(self, pending, scope) -> int:
        changed = 0
        for asr, region in pending.values():
            added, removed = neighbourhood_delta(
                self.db, asr.path, asr.extension, asr.extension_relation, region
            )
            if added or removed:
                asr.apply_delta(added, removed, scope)
                changed += len(added) + len(removed)
        return changed

    @property
    def pending_regions(self) -> int:
        """How many ASRs have un-flushed dirty regions queued."""
        return len(self._pending)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Skip maintenance inside the block, then rebuild every ASR.

        Use around bulk loads where incremental upkeep would be wasteful::

            with manager.suspended():
                generator.populate(db)
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1
            if not self._suspended:
                for asr in self.asrs:
                    asr.rebuild(self.db)

    # ------------------------------------------------------------------
    # verification / inspection
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert every managed ASR matches a from-scratch rebuild."""
        for asr in self.asrs:
            asr.consistency_check(self.db)

    def report(self) -> str:
        """A catalog-style summary of every managed ASR."""
        if not self.asrs:
            return "no access support relations registered"
        lines = [f"{len(self.asrs)} access support relation(s):"]
        for asr in self.asrs:
            shared = sum(1 for p in asr.partitions if p.shared)
            suffix = f", {shared} shared partition(s)" if shared else ""
            lines.append(
                f"  {asr.path} [{asr.extension.value}, dec={asr.decomposition}]: "
                f"{asr.tuple_count} tuples, {asr.total_pages} data pages, "
                f"{asr.total_bytes} bytes{suffix}"
            )
        return "\n".join(lines)
