"""ASRManager — keeps a family of ASRs consistent with an object base.

The manager subscribes to the object base's change events and, for every
registered access support relation, computes the dirty region and applies
the neighbourhood delta (:mod:`repro.asr.maintenance`).  It is the
run-time embodiment of section 6: after any sequence of updates, each
managed ASR equals what a from-scratch rebuild would produce (verified by
:meth:`check_consistency` and the property-based test suite).

Maintenance can be charged to a page-access buffer to *measure* update
costs on the storage simulator, mirroring the analytical update-cost
model of :mod:`repro.costmodel.updatecost`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.asr.maintenance import analyze_event, neighbourhood_delta
from repro.errors import ObjectBaseError
from repro.gom.database import ObjectBase
from repro.gom.events import Event
from repro.gom.paths import PathExpression


class ASRManager:
    """Owns access support relations over one object base."""

    def __init__(self, db: ObjectBase) -> None:
        self.db = db
        self.asrs: list[AccessSupportRelation] = []
        self._suspended = 0
        #: Optional page-access buffer charged for tree maintenance.
        self.buffer = None
        db.subscribe(self._on_event)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def create(
        self,
        path: PathExpression,
        extension: Extension = Extension.FULL,
        decomposition: Decomposition | None = None,
    ) -> AccessSupportRelation:
        """Build and register an ASR for ``path`` from the current state."""
        asr = AccessSupportRelation.build(self.db, path, extension, decomposition)
        self.asrs.append(asr)
        return asr

    def register(self, asr: AccessSupportRelation) -> None:
        """Adopt an externally built ASR (assumed consistent right now)."""
        self.asrs.append(asr)

    def drop(self, asr: AccessSupportRelation) -> None:
        try:
            self.asrs.remove(asr)
        except ValueError:
            raise ObjectBaseError("ASR is not registered with this manager") from None

    def find(
        self, path: PathExpression, extension: Extension | None = None
    ) -> list[AccessSupportRelation]:
        """Registered ASRs over ``path`` (optionally of one extension)."""
        return [
            asr
            for asr in self.asrs
            if asr.path == path and (extension is None or asr.extension is extension)
        ]

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        if self._suspended:
            return
        for asr in self.asrs:
            region = analyze_event(self.db, asr.path, event)
            if not region:
                continue
            added, removed = neighbourhood_delta(
                self.db, asr.path, asr.extension, asr.extension_relation, region
            )
            if added or removed:
                asr.apply_delta(added, removed, self.buffer)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Skip maintenance inside the block, then rebuild every ASR.

        Use around bulk loads where incremental upkeep would be wasteful::

            with manager.suspended():
                generator.populate(db)
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1
            if not self._suspended:
                for asr in self.asrs:
                    asr.rebuild(self.db)

    # ------------------------------------------------------------------
    # verification / inspection
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert every managed ASR matches a from-scratch rebuild."""
        for asr in self.asrs:
            asr.consistency_check(self.db)

    def report(self) -> str:
        """A catalog-style summary of every managed ASR."""
        if not self.asrs:
            return "no access support relations registered"
        lines = [f"{len(self.asrs)} access support relation(s):"]
        for asr in self.asrs:
            shared = sum(1 for p in asr.partitions if p.shared)
            suffix = f", {shared} shared partition(s)" if shared else ""
            lines.append(
                f"  {asr.path} [{asr.extension.value}, dec={asr.decomposition}]: "
                f"{asr.tuple_count} tuples, {asr.total_pages} data pages, "
                f"{asr.total_bytes} bytes{suffix}"
            )
        return "\n".join(lines)
