"""ASRManager — keeps a family of ASRs consistent with an object base.

The manager subscribes to the object base's change events and, for every
registered access support relation, computes the dirty region and applies
the neighbourhood delta (:mod:`repro.asr.maintenance`).  It is the
run-time embodiment of section 6: after any sequence of updates, each
managed ASR equals what a from-scratch rebuild would produce (verified by
:meth:`check_consistency` and the property-based test suite).

Maintenance can be charged to an :class:`~repro.context.ExecutionContext`
(or a bare buffer scope) to *measure* update costs on the storage
simulator, mirroring the analytical update-cost model of
:mod:`repro.costmodel.updatecost`.

Two maintenance regimes exist:

* **eager** (the default): every primitive event is analyzed and its
  neighbourhood delta applied immediately — one tree round-trip per
  event per ASR, the regime section 6 prices;
* **batched** (:meth:`batch` / :meth:`flush`): events only *accumulate*
  their dirty regions in a per-ASR queue; the regions are coalesced
  (set-union of anchors and dead OIDs) and, at the flush boundary, one
  ``neighbourhood_delta`` per ASR is computed against the final object
  graph and applied under a single buffer scope.  Overlapping events
  therefore charge their shared pages once, and intermediate states
  that a later event undoes never touch the trees at all.

A manager holds its event subscription until :meth:`close` is called
(or its ``with`` block exits); a closed manager no longer maintains its
ASRs.  When the manager is constructed with an ``ExecutionContext``,
pending batches are flushed automatically when that context closes.

**Concurrency** (see :mod:`repro.concurrency` and DESIGN §9): the
manager carries a readers-writer lock.  Query-side readers — the
planners and the select executor — hold the read side while probing
registered ASRs and reading their trees, so any number of queries
proceed in parallel; event maintenance, flushes, recovery, registration
changes, and the quarantine state transitions take the write side and
are exclusive.  Callers mutating the *object base* from several threads
should wrap each update transaction in :meth:`exclusive` so the graph
mutation and its maintenance are one atomic unit with respect to
concurrent readers.  ``batch()`` blocks themselves are per-thread
(open/close a batch from one thread at a time).

**Crash consistency** (see :mod:`repro.asr.journal`): every delta —
eager or batched — is applied under a write-ahead intent journal and
drives the ASR through ``CONSISTENT → APPLYING → CONSISTENT``.  A
:class:`~repro.errors.SimulatedCrash` or
:class:`~repro.errors.InjectedFault` mid-delta quarantines the ASR
instead of leaving it silently torn; :meth:`recover` replays the journal
by recomputing the neighbourhood against the current object graph (with
bounded retry/backoff on transient faults, and a full rebuild as last
resort), and :meth:`verify` is the ``repro doctor`` backend.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Iterator

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.asr.journal import ASRState, IntentJournal
from repro.asr.maintenance import (
    DirtyRegion,
    analyze_event,
    merge_regions,
    neighbourhood_delta,
)
from repro.concurrency import RWLock
from repro.context import ExecutionContext
from repro.errors import (
    InjectedFault,
    ObjectBaseError,
    RecoveryError,
    SimulatedCrash,
)
from repro.faults import reach
from repro.gom.database import ObjectBase
from repro.gom.events import Event
from repro.gom.paths import PathExpression
from repro.resilience.policy import RecoveryPolicy


class ASRManager:
    """Owns access support relations over one object base.

    Parameters
    ----------
    db:
        The object base whose change events drive maintenance.
    context:
        Optional :class:`~repro.context.ExecutionContext` charged for
        tree maintenance.  Setting the legacy ``manager.buffer``
        attribute to a raw buffer scope remains supported and takes
        precedence while set.
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector` whose named crash
        points the flush/recovery pipeline consults; defaults to the
        context's injector when a context is given.
    auto_recover:
        When True (default), a *transient* :class:`InjectedFault` during
        a flush triggers an immediate in-place :meth:`recover` of the
        affected ASR; when that also fails the ASR stays quarantined and
        the flush continues degraded.  A :class:`SimulatedCrash` always
        propagates — a dead process cannot self-heal.
    metrics:
        Optional :class:`~repro.telemetry.registry.MetricsRegistry`.
        Defaults to the context's registry when a context is given.
        Maintenance publishes ``asr.maintenance.rows`` (extension rows
        changed per applied delta), quarantine transitions publish
        ``asr.quarantine.entered`` / ``asr.quarantine.exited`` (labelled
        by extension), and every operation counter the manager bumps in
        the context trace is mirrored into the ``ops`` counter family.
    """

    #: Bounded-retry default seeding the manager's
    #: :class:`~repro.resilience.policy.RecoveryPolicy` (kept as a class
    #: constant for callers that size their own retry ladders off it).
    DEFAULT_MAX_RETRIES = 3

    def __init__(
        self,
        db: ObjectBase,
        context: ExecutionContext | None = None,
        fault_injector=None,
        auto_recover: bool = True,
        metrics=None,
        policy: RecoveryPolicy | None = None,
    ) -> None:
        self.db = db
        #: The retry/backoff contract every recovery path follows —
        #: shared verbatim with ``repro doctor --repair`` and the
        #: :class:`~repro.resilience.healer.HealerLoop`.
        self.policy = policy or RecoveryPolicy(max_retries=self.DEFAULT_MAX_RETRIES)
        #: Seeded jitter source for the policy's backoff ladder.
        self._backoff_rng = random.Random(0)
        #: ``fn(asr, "quarantined"|"consistent")`` callbacks fired on
        #: every quarantine transition (see :meth:`add_state_listener`).
        self._state_listeners: list[Callable] = []
        self.asrs: list[AccessSupportRelation] = []
        self._suspended = 0
        #: Optional page-access buffer charged for tree maintenance
        #: (legacy spelling; prefer passing an ExecutionContext).
        self.buffer = None
        self.context = context
        self.fault_injector = fault_injector
        self.auto_recover = auto_recover
        self.metrics = metrics
        self._batch_depth = 0
        #: Coalesced pending dirty regions, one per batched ASR
        #: (keyed by identity — ASRs are not hashable by value).
        self._pending: dict[int, tuple[AccessSupportRelation, DirtyRegion]] = {}
        #: Outstanding intent journals, one per APPLYING/QUARANTINED ASR.
        self._journals: dict[int, tuple[AccessSupportRelation, IntentJournal]] = {}
        self._epoch = 0
        self._closed = False
        #: Readers-writer lock: queries share, maintenance is exclusive.
        #: Writer-preferring, so a saturating read stream cannot starve
        #: flush/recover; writer queueing delays are published as the
        #: ``lock.writer_wait_ms`` histogram of the registry in force.
        self.lock = RWLock(metrics=self._metrics())
        db.subscribe(self._on_event)
        if context is not None:
            context.add_exit_hook(self.flush)

    @property
    def epoch(self) -> int:
        """Monotone version number of the queryable ASR configuration.

        Bumped by every journaled maintenance batch, real quarantine
        transition, recovery rebuild, bulk-load rebuild, and ASR
        (de)registration — anything that can change which plan the
        planner would pick or which partitions a chosen plan may touch.
        Compiled-plan caches key on this value so a bump invalidates
        them wholesale.  Read it under the manager's read lock to pair
        it consistently with a planning decision.
        """
        return self._epoch

    @property
    def retry_backoff(self) -> float:
        """Back-compat alias for ``policy.backoff_s`` (read and write)."""
        return self.policy.backoff_s

    @retry_backoff.setter
    def retry_backoff(self, value: float) -> None:
        self.policy = replace(self.policy, backoff_s=float(value))

    def add_state_listener(self, listener: Callable) -> None:
        """Subscribe to quarantine transitions of the managed ASRs.

        ``listener(asr, state)`` is called with ``"quarantined"`` on
        every quarantine entry and ``"consistent"`` on every exit,
        *while the write lock is held* — listeners must be fast, must
        not sleep, and must not take the manager's lock (the breaker
        board qualifies: it uses its own).
        """
        self._state_listeners.append(listener)

    def _notify_state(self, asr, state: str) -> None:
        for listener in self._state_listeners:
            try:
                listener(asr, state)
            except Exception:  # pragma: no cover - listeners must not
                pass  # break maintenance; they are observability glue

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def create(
        self,
        path: PathExpression,
        extension: Extension = Extension.FULL,
        decomposition: Decomposition | None = None,
        workers: int | None = None,
    ) -> AccessSupportRelation:
        """Build and register an ASR for ``path`` from the current state.

        ``workers`` parallelizes the bulk build across a thread pool
        (see :meth:`AccessSupportRelation.build`); the result is
        identical to the sequential build.
        """
        asr = AccessSupportRelation.build(
            self.db, path, extension, decomposition, workers=workers
        )
        with self.lock.write():
            self.asrs.append(asr)
            self._epoch += 1
        return asr

    def register(self, asr: AccessSupportRelation) -> None:
        """Adopt an externally built ASR (assumed consistent right now)."""
        with self.lock.write():
            self.asrs.append(asr)
            self._epoch += 1

    def drop(self, asr: AccessSupportRelation) -> None:
        with self.lock.write():
            try:
                self.asrs.remove(asr)
            except ValueError:
                raise ObjectBaseError(
                    "ASR is not registered with this manager"
                ) from None
            self._pending.pop(id(asr), None)
            self._journals.pop(id(asr), None)
            self._epoch += 1

    def replace(
        self, old: AccessSupportRelation, new: AccessSupportRelation
    ) -> None:
        """Atomically swap ``old`` for ``new`` in one exclusive section.

        The re-materialization primitive: unlike a ``drop`` followed by a
        ``register`` (two separate exclusive sections), no reader can
        ever observe the gap where neither ASR is registered, and the
        configuration version moves by exactly **one** epoch bump — so
        compiled-plan caches invalidate once, not twice.  ``old``'s
        pending regions and outstanding journal die with it; ``new`` is
        adopted as consistent.  Raises :class:`ObjectBaseError` (and
        changes nothing) when ``old`` is not registered, which makes the
        caller's rollback trivial: build failures before this call leave
        ``old`` serving untouched.
        """
        with self.lock.write():
            try:
                index = self.asrs.index(old)
            except ValueError:
                raise ObjectBaseError(
                    "ASR is not registered with this manager"
                ) from None
            self.asrs[index] = new
            self._pending.pop(id(old), None)
            self._journals.pop(id(old), None)
            self._epoch += 1

    def find(
        self, path: PathExpression, extension: Extension | None = None
    ) -> list[AccessSupportRelation]:
        """Registered ASRs over ``path`` (optionally of one extension)."""
        return [
            asr
            for asr in self.asrs
            if asr.path == path and (extension is None or asr.extension is extension)
        ]

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Flush pending work and stop maintaining: unsubscribe from the db.

        Idempotent, and safe while a batch is open: the defined order is
        *flush-then-unsubscribe*, so pending work queued inside a still
        open ``batch()`` block is applied (not dropped) and the batch's
        own exit then flushes nothing.  The manager is marked closed and
        unsubscribed even when the flush itself fails (e.g. an injected
        crash) — the quarantine/journal state survives for
        :meth:`recover`, but no further events are observed.
        """
        if self._closed:
            return
        with self.lock.write():
            try:
                self.flush()
            finally:
                self._closed = True
                try:
                    self.db.unsubscribe(self._on_event)
                except ValueError:  # pragma: no cover - subscription already gone
                    pass

    def __enter__(self) -> "ASRManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        return None

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------

    def _charge_target(self):
        """Where maintenance page accesses go (legacy buffer wins)."""
        if self.buffer is not None:
            return self.buffer
        return self.context

    def _injector(self):
        """The fault policy in force (explicit wins over the context's)."""
        if self.fault_injector is not None:
            return self.fault_injector
        if self.context is not None:
            return self.context.fault_injector
        return None

    def _metrics(self):
        """The registry in force (explicit wins over the context's)."""
        if self.metrics is not None:
            return self.metrics
        if self.context is not None:
            return self.context.metrics
        return None

    def _count(self, name: str, n: int = 1) -> None:
        """Bump an operation counter in the context trace, if any."""
        if self.context is not None:
            self.context.count(name, n)
            return
        registry = self._metrics()
        if registry is not None:
            registry.inc("ops", n, op=name)

    def _metric_inc(self, name: str, n: float = 1, **labels: str) -> None:
        """Publish one counter bump into the registry in force, if any."""
        registry = self._metrics()
        if registry is not None:
            registry.inc(name, n, **labels)

    def _mark_quarantined(self, asr) -> None:
        """Transition ``asr`` to QUARANTINED, counting the entry once."""
        if asr.state is not ASRState.QUARANTINED:
            self._metric_inc(
                "asr.quarantine.entered",
                extension=getattr(asr.extension, "value", str(asr.extension)),
            )
            asr.state = ASRState.QUARANTINED
            self._epoch += 1
            self._notify_state(asr, "quarantined")
            return
        asr.state = ASRState.QUARANTINED

    def _mark_consistent(self, asr) -> None:
        """Transition ``asr`` to CONSISTENT, counting a quarantine exit."""
        if asr.state is ASRState.QUARANTINED:
            self._metric_inc(
                "asr.quarantine.exited",
                extension=getattr(asr.extension, "value", str(asr.extension)),
            )
            asr.state = ASRState.CONSISTENT
            self._epoch += 1
            self._notify_state(asr, "consistent")
            return
        asr.state = ASRState.CONSISTENT

    def _on_event(self, event: Event) -> None:
        if self._closed or self._suspended:
            return
        with self.lock.write():
            if self._batch_depth:
                self._enqueue(event)
                return
            items = []
            for asr in self.asrs:
                region = analyze_event(self.db, asr.path, event)
                if region:
                    items.append((asr, region))
            if items:
                self._journaled_run(items, self._charge_target(), "asr.apply")

    def _enqueue(self, event: Event) -> None:
        """Accumulate the event's dirty regions without touching trees.

        The region must be computed *now* (it reads event-time graph
        state, e.g. the members of a collection being detached), but the
        expensive neighbourhood recomputation and all tree mutations are
        deferred to :meth:`flush`.
        """
        for asr in self.asrs:
            region = analyze_event(self.db, asr.path, event)
            if not region:
                continue
            key = id(asr)
            if key in self._pending:
                _, pending = self._pending[key]
                self._pending[key] = (asr, merge_regions(pending, region))
            else:
                self._pending[key] = (asr, region)

    @contextmanager
    def batch(self) -> Iterator["ASRManager"]:
        """Defer maintenance inside the block; flush once on exit.

        Unlike :meth:`suspended`, this does **not** fall back to full
        rebuilds: the coalesced dirty regions are maintained exactly,
        just with one tree round-trip per ASR instead of one per event::

            with manager.batch():
                db.set_insert(parts, bolt)
                db.set_insert(parts, nut)
            # <- one coalesced neighbourhood delta applied here

        Nesting is allowed; only the outermost exit flushes.

        An exception escaping the (outermost) block does **not** flush:
        applying tree deltas during unwind would race the very failure
        being propagated.  Instead each pending region is re-validated
        against the live graph — regions whose net delta is empty are
        discarded, the rest quarantine their ASR with the region
        journalled, to be healed by :meth:`recover`.
        """
        self._batch_depth += 1
        try:
            yield self
        except BaseException:
            self._batch_depth -= 1
            if not self._batch_depth:
                with self.lock.write():
                    self._abort_pending()
            raise
        else:
            self._batch_depth -= 1
            if not self._batch_depth:
                self.flush()

    @contextmanager
    def exclusive(self) -> Iterator["ASRManager"]:
        """Hold the write side across a multi-step update transaction.

        Concurrent writers mutating the object base should wrap each
        transaction (the graph mutations *and* the eager maintenance they
        trigger) in this block so readers never observe the graph and the
        ASRs mid-divergence::

            with manager.exclusive():
                db.set_insert(parts, bolt)
                db.set_attr(bolt, "weight", 7)

        Reentrant: the eager ``_on_event`` path re-acquires the same
        write side without deadlocking.
        """
        with self.lock.write():
            yield self

    @contextmanager
    def shared(self) -> Iterator["ASRManager"]:
        """Hold the read side — what the planner and executor do per query."""
        with self.lock.read():
            yield self

    def _abort_pending(self) -> None:
        """Discard-or-quarantine pending regions after an aborted batch."""
        pending, self._pending = self._pending, {}
        for asr, region in pending.values():
            if asr.state is not ASRState.CONSISTENT:
                self._absorb(asr, region)
                continue
            try:
                added, removed = neighbourhood_delta(
                    self.db, asr.path, asr.extension, asr.extension_relation, region
                )
                stale = bool(added or removed)
            except Exception:  # conservative: assume the region matters
                stale = True
            if stale:
                self._quarantine(asr, region)
                self._count("asr.batch.aborted")

    def flush(self, context=None) -> int:
        """Apply all pending coalesced deltas under a single buffer scope.

        Returns the number of extension rows that changed (added plus
        removed, over all ASRs).  Page accesses are charged to
        ``context`` when given, else to the manager's context / legacy
        buffer.  No-op when nothing is pending.
        """
        with self.lock.write():
            if not self._pending:
                return 0
            pending, self._pending = self._pending, {}
            target = context if context is not None else self._charge_target()
            if isinstance(target, ExecutionContext):
                with target.operation("asr.flush") as scope:
                    return self._journaled_run(pending.values(), scope, "asr.flush")
            # A raw buffer scope (or None) is already a single scope.
            return self._journaled_run(pending.values(), target, "asr.flush")

    # ------------------------------------------------------------------
    # crash-consistent delta application
    # ------------------------------------------------------------------

    def _journaled_run(self, items, scope, stage: str) -> int:
        """Apply ``(asr, region)`` items under write-ahead intent journals.

        Phase 1 journals every intent before any tree is touched (so a
        crash can never lose a region silently); phase 2 applies the
        deltas, committing each journal on success.  Crash points
        ``{stage}.journal`` / ``{stage}.mid-delta`` / ``{stage}.post-delta``
        are consulted along the way.
        """
        injector = self._injector()
        self._epoch += 1
        journaled: list[tuple[AccessSupportRelation, IntentJournal]] = []
        for asr, region in items:
            if asr.state is not ASRState.CONSISTENT:
                # Already quarantined: widen its journal for recover().
                self._absorb(asr, region)
                continue
            added, removed = neighbourhood_delta(
                self.db, asr.path, asr.extension, asr.extension_relation, region
            )
            if not added and not removed:
                continue
            journal = IntentJournal(
                region, self._epoch, frozenset(added), frozenset(removed)
            )
            self._journals[id(asr)] = (asr, journal)
            asr.state = ASRState.APPLYING
            journaled.append((asr, journal))
        if not journaled:
            return 0
        try:
            reach(injector, f"{stage}.journal")
            return self._apply_journaled(journaled, scope, injector, stage)
        except SimulatedCrash:
            # The "process" died mid-flush: every intent not yet
            # committed stays journalled and the ASR quarantined.
            for asr, _journal in journaled:
                if asr.state is ASRState.APPLYING:
                    self._mark_quarantined(asr)
            raise

    def _apply_journaled(self, journaled, scope, injector, stage: str) -> int:
        changed = 0
        for asr, journal in journaled:
            try:
                asr.apply_delta((), journal.removed, scope)
                reach(injector, f"{stage}.mid-delta")
                asr.apply_delta(journal.added, (), scope)
                reach(injector, f"{stage}.post-delta")
            except SimulatedCrash:
                raise  # quarantined by _journaled_run
            except InjectedFault:
                self._mark_quarantined(asr)
                self._count(f"{stage}.fault")
                if self.auto_recover:
                    try:
                        self._recover_one(asr, scope, injector, self.policy.max_retries)
                    except (InjectedFault, RecoveryError):
                        self._count(f"{stage}.quarantined")
                    else:
                        changed += len(journal.added) + len(journal.removed)
                        self._note_rows(asr, journal, stage)
                else:
                    self._count(f"{stage}.quarantined")
            else:
                self._journals.pop(id(asr), None)
                self._mark_consistent(asr)
                changed += len(journal.added) + len(journal.removed)
                self._note_rows(asr, journal, stage)
        return changed

    def _note_rows(self, asr, journal, stage: str) -> None:
        """Publish one applied delta's row count as a maintenance metric."""
        self._metric_inc(
            "asr.maintenance.rows",
            len(journal.added) + len(journal.removed),
            extension=getattr(asr.extension, "value", str(asr.extension)),
            stage=stage,
        )

    def _quarantine(self, asr: AccessSupportRelation, region: DirtyRegion) -> None:
        """Quarantine ``asr`` with ``region`` journalled for recovery."""
        key = id(asr)
        if key in self._journals:
            _, journal = self._journals[key]
            self._journals[key] = (asr, journal.absorb(region))
        else:
            self._journals[key] = (asr, IntentJournal(region, self._epoch))
        self._mark_quarantined(asr)

    def _absorb(self, asr: AccessSupportRelation, region: DirtyRegion) -> None:
        """Merge a quarantined ASR's new dirty region into its journal."""
        self._quarantine(asr, region)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @property
    def quarantined(self) -> list[AccessSupportRelation]:
        """The managed ASRs currently awaiting recovery."""
        return [asr for asr in self.asrs if asr.state is not ASRState.CONSISTENT]

    def journal_for(self, asr: AccessSupportRelation) -> IntentJournal | None:
        """The outstanding intent journal of ``asr``, if any."""
        entry = self._journals.get(id(asr))
        return entry[1] if entry is not None else None

    def recover(
        self,
        asr: AccessSupportRelation | None = None,
        context=None,
        max_retries: int | None = None,
    ) -> int:
        """Heal quarantined ASRs; returns how many were recovered.

        For each quarantined ASR the journal is replayed by *recomputing*
        the neighbourhood delta of the journalled dirty region against
        the current object graph and healing the logical extension
        relation, then reloading every partition wholesale from it — safe
        for arbitrarily torn trees, and idempotent because the recompute
        derives the correct post-state instead of redoing half-applied
        operations.  Transient :class:`InjectedFault`\\ s are retried up
        to ``max_retries`` times (default: the manager's
        :class:`~repro.resilience.policy.RecoveryPolicy`), with the
        policy's exponential backoff + seeded jitter between attempts.
        When retries are exhausted a full
        :meth:`~AccessSupportRelation.rebuild` is the last resort
        (unless ``policy.rebuild_fallback`` is off); if even that
        faults, :class:`RecoveryError` is raised and the ASR stays
        quarantined.

        ``asr`` restricts recovery to one relation (it need not be
        quarantined — recovering a consistent ASR is a no-op).

        **Lock discipline**: each retry *attempt* runs under the write
        lock, but the backoff sleeps between attempts happen with the
        lock released — readers keep making progress through the retry
        ladder (planners route around the still-quarantined ASR), and a
        saturating read stream cannot be stalled for the whole
        exponential backoff total.  When recovery runs nested inside a
        frame that already holds the write side (the auto-recover path
        inside a flush, or ``verify(repair=True)``), the reentrant lock
        stays held across the sleeps by the *outer* frames; that ladder
        is capped at ``max_retries`` sleeps of ``policy.delay(k)``
        seconds.
        """
        with self.lock.write():
            targets = (
                [asr]
                if asr is not None
                else [a for a in self.asrs if a.state is not ASRState.CONSISTENT]
            )
            targets = [a for a in targets if a.state is not ASRState.CONSISTENT]
        if not targets:
            return 0
        retries = self.policy.max_retries if max_retries is None else max_retries
        injector = self._injector()
        target = context if context is not None else self._charge_target()
        recovered = 0
        if isinstance(target, ExecutionContext):
            with target.operation("asr.recover") as scope:
                for one in targets:
                    self._recover_one(one, scope, injector, retries)
                    recovered += 1
        else:
            for one in targets:
                self._recover_one(one, target, injector, retries)
                recovered += 1
        return recovered

    def _recover_one(self, asr, scope, injector, max_retries: int) -> None:
        # Duck-typed registrants (e.g. the nested-index baseline) have no
        # partitions to reload selectively; they recover via rebuild().
        partitions = getattr(asr, "partitions", None)
        with self.lock.write():
            if partitions is not None and any(p.shared for p in partitions):
                # A shared partition aggregates witnesses from *other*
                # ASRs: reloading it wholesale from this ASR's extension
                # would drop theirs.  Sharing is set up by
                # repro.asr.sharing after the manager is out of the
                # picture, so refuse loudly.
                raise RecoveryError(
                    f"cannot recover {asr.path} [{asr.extension.value}]: it "
                    "has shared partitions; rebuild the sharing group instead"
                )
        last_fault: InjectedFault | None = None
        for attempt in range(max(1, max_retries)):
            self._count("asr.recover.attempt")
            delay = self.policy.delay(attempt, self._backoff_rng)
            if delay:
                # Backoff with the write lock released (unless an outer
                # frame holds it reentrantly — see :meth:`recover`): the
                # ASR stays quarantined while we sleep, so concurrent
                # readers proceed and planners route around it.
                time.sleep(delay)
            with self.lock.write():
                if asr.state is ASRState.CONSISTENT:
                    # Another thread healed it during our backoff.
                    self._count("asr.recover.ok")
                    return
                # Re-fetch per attempt: updates absorbed while the lock
                # was released widen the journal we must replay.
                journal = self.journal_for(asr)
                try:
                    reach(injector, "asr.recover.replay")
                    if journal is not None and partitions is not None:
                        added, removed = neighbourhood_delta(
                            self.db,
                            asr.path,
                            asr.extension,
                            asr.extension_relation,
                            journal.region,
                        )
                        # Heal the logical relation only; the (possibly
                        # torn) trees are replaced wholesale below.
                        for row in removed:
                            asr.extension_relation.discard(row)
                        for row in added:
                            asr.extension_relation.add(row)
                    reach(injector, "asr.recover.reload")
                    if partitions is None:
                        asr.rebuild(self.db)
                    else:
                        rows = asr.extension_relation.rows
                        for partition in partitions:
                            partition.load_from_extension(rows)
                except SimulatedCrash:
                    self._mark_quarantined(asr)
                    raise
                except InjectedFault as fault:
                    last_fault = fault
                    self._mark_quarantined(asr)
                    continue
                else:
                    self._journals.pop(id(asr), None)
                    self._mark_consistent(asr)
                    self._count("asr.recover.ok")
                    return
        # Retries exhausted: a from-scratch rebuild is the last resort.
        if not self.policy.rebuild_fallback:
            raise RecoveryError(
                f"recovery of {asr.path} [{asr.extension.value}] failed after "
                f"{max_retries} replay attempt(s); rebuild fallback disabled "
                "by policy"
            ) from last_fault
        with self.lock.write():
            was_quarantined = asr.state is ASRState.QUARANTINED
            try:
                asr.rebuild(self.db)
            except (InjectedFault, SimulatedCrash) as err:
                self._mark_quarantined(asr)
                raise RecoveryError(
                    f"recovery of {asr.path} [{asr.extension.value}] failed "
                    f"after {max_retries} replay attempt(s) and a rebuild "
                    "attempt"
                ) from err
            self._epoch += 1
            if was_quarantined:
                # rebuild() reset the state itself; count the exit here.
                self._metric_inc(
                    "asr.quarantine.exited",
                    extension=getattr(asr.extension, "value", str(asr.extension)),
                )
                self._notify_state(asr, "consistent")
            self._journals.pop(id(asr), None)
            self._count("asr.recover.rebuilt")
            if last_fault is not None:
                self._count("asr.recover.retries-exhausted")

    def verify(self, repair: bool = False) -> dict:
        """Inspect (and optionally repair) every managed ASR.

        The backend of ``repro doctor``: returns a JSON-able report with
        one entry per ASR (path, extension, state, outstanding journal)
        plus headline counts.  With ``repair=True``, quarantined ASRs are
        recovered in place and the report records the outcome per ASR.
        """
        guard = self.lock.write() if repair else self.lock.read()
        with guard:
            entries = []
            recovered = failed = 0
            for asr in self.asrs:
                entry: dict = {
                    "path": str(asr.path),
                    "extension": asr.extension.value,
                    "state": asr.state.value,
                }
                journal = self.journal_for(asr)
                if journal is not None:
                    entry["journal"] = journal.describe()
                if repair and asr.state is not ASRState.CONSISTENT:
                    try:
                        self._recover_one(
                            asr, None, self._injector(), self.policy.max_retries
                        )
                    except (RecoveryError, InjectedFault) as err:
                        entry["repair"] = f"failed: {err}"
                        failed += 1
                    else:
                        entry["repair"] = "recovered"
                        recovered += 1
                    entry["state"] = asr.state.value
                entries.append(entry)
            quarantined = sum(
                1 for asr in self.asrs if asr.state is not ASRState.CONSISTENT
            )
            return {
                "asrs": entries,
                "quarantined": quarantined,
                "recovered": recovered,
                "failed": failed,
                "ok": quarantined == 0,
            }

    @property
    def pending_regions(self) -> int:
        """How many ASRs have un-flushed dirty regions queued."""
        return len(self._pending)

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Skip maintenance inside the block, then rebuild every ASR.

        Use around bulk loads where incremental upkeep would be wasteful::

            with manager.suspended():
                generator.populate(db)
        """
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1
            if not self._suspended:
                with self.lock.write():
                    self._epoch += 1
                    for asr in self.asrs:
                        asr.rebuild(self.db)
                        # A rebuild restores consistency unconditionally, so
                        # any outstanding journal is moot.
                        self._journals.pop(id(asr), None)

    # ------------------------------------------------------------------
    # verification / inspection
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert every managed ASR matches a from-scratch rebuild."""
        with self.lock.read():
            for asr in self.asrs:
                asr.consistency_check(self.db)

    def report(self) -> str:
        """A catalog-style summary of every managed ASR."""
        if not self.asrs:
            return "no access support relations registered"
        lines = [f"{len(self.asrs)} access support relation(s):"]
        for asr in self.asrs:
            shared = sum(1 for p in asr.partitions if p.shared)
            suffix = f", {shared} shared partition(s)" if shared else ""
            lines.append(
                f"  {asr.path} [{asr.extension.value}, dec={asr.decomposition}]: "
                f"{asr.tuple_count} tuples, {asr.total_pages} data pages, "
                f"{asr.total_bytes} bytes{suffix}"
            )
        return "\n".join(lines)
