"""Self-adjusting physical design (the paper's stated future work).

Section 7: "the cost model is intended to be integrated into our
object-oriented DBMS in order to verify a given physical database
design, or even to automate the task of physical database design.  Thus,
for a recorded database usage pattern the system could
(semi-)automatically adjust the physical database design."

This module implements that loop:

1. :class:`WorkloadRecorder` counts the executed operations — forward and
   backward queries by range, ``ins_i``-style updates — either via
   explicit ``record_*`` calls or by observing an
   :class:`~repro.query.evaluator.QueryEvaluator` and the object base's
   change events;
2. :meth:`WorkloadRecorder.to_mix` turns the log into the cost model's
   ``(OperationMix, P_up)``;
3. :class:`AdaptiveDesigner` measures the live profile
   (:func:`~repro.costmodel.profiling.profile_from_database`), runs the
   :class:`~repro.costmodel.advisor.DesignAdvisor`, and — when the best
   design beats the current one by a configurable factor — re-materializes
   the ASR under the new (extension, decomposition).

**Online re-materialization** (DESIGN §15): :meth:`AdaptiveDesigner.retune`
is safe to run inside a live daemon.  The replacement ASR is bulk-built
*without* the manager's lock so concurrent readers keep serving from the
old design; a catch-up observer subscribed to the object base records the
dirty regions of every update that lands mid-build (updaters hold the
manager's write lock per the :meth:`~repro.asr.manager.ASRManager.exclusive`
contract, so region capture is race-free); then one exclusive section
applies the coalesced catch-up delta — the same recompute-derives-the-
correct-post-state argument :meth:`~repro.asr.manager.ASRManager.recover`
relies on — and swaps old for new via
:meth:`~repro.asr.manager.ASRManager.replace`, a single atomic transition
with exactly one epoch bump.  The old ASR is never dropped until the
replacement is fully caught up, so any failure (including the armed crash
points ``asr.retune.build`` / ``asr.retune.register``) rolls back to the
old design still registered and consistent.
"""

from __future__ import annotations

import logging
import threading
from collections import Counter
from dataclasses import dataclass

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.asr.maintenance import analyze_event, merge_regions, neighbourhood_delta
from repro.asr.manager import ASRManager
from repro.costmodel.advisor import DesignAdvisor, DesignChoice
from repro.costmodel.opmix import OperationMix, QuerySpec, UpdateSpec
from repro.costmodel.profiling import profile_from_database
from repro.errors import CostModelError
from repro.faults import reach
from repro.gom.events import AttributeSet, Event, SetInserted, SetRemoved
from repro.gom.paths import PathExpression

_logger = logging.getLogger("repro.adaptive")


class WorkloadRecorder:
    """Counts the operations executed against one path expression.

    Query ranges are recorded as ``(i, j, kind)`` triples and updates as
    the edge index ``i`` of the paper's ``ins_i``.  The recorder can be
    attached to an object base to count update events automatically.

    Recording is thread-safe: the serve workers of both cores (and the
    ``POST /query`` handler) call ``record_*`` concurrently, so every
    mutation and every aggregate read takes the recorder's own lock —
    the same single-lock discipline as
    :class:`~repro.concurrency.ThreadSafeAccessStats`.
    """

    def __init__(self, path: PathExpression) -> None:
        self.path = path
        self.queries: Counter[tuple[int, int, str]] = Counter()
        self.updates: Counter[int] = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_query(self, i: int, j: int, kind: str, count: int = 1) -> None:
        if kind not in ("fw", "bw"):
            raise CostModelError(f"query kind must be 'fw' or 'bw', got {kind!r}")
        if not 0 <= i < j <= self.path.n:
            raise CostModelError(f"invalid query range ({i}, {j})")
        with self._lock:
            self.queries[(i, j, kind)] += count

    def record_update(self, i: int, count: int = 1) -> None:
        if not 0 <= i < self.path.n:
            raise CostModelError(f"invalid update position {i}")
        with self._lock:
            self.updates[i] += count

    def attach(self, db) -> None:
        """Count update events on the object base automatically."""
        db.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        for s, step in enumerate(self.path.steps, start=1):
            if isinstance(event, AttributeSet):
                if step.attribute == event.attribute and event.type_name == step.domain_type:
                    self.record_update(s - 1)
            elif isinstance(event, (SetInserted, SetRemoved)):
                if step.collection_type == event.set_type:
                    self.record_update(s - 1)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    @property
    def total_queries(self) -> int:
        with self._lock:
            return sum(self.queries.values())

    @property
    def total_updates(self) -> int:
        with self._lock:
            return sum(self.updates.values())

    @property
    def total_operations(self) -> int:
        with self._lock:
            return sum(self.queries.values()) + sum(self.updates.values())

    def to_mix(self) -> tuple[OperationMix, float]:
        """The recorded workload as ``(OperationMix, P_up)``."""
        with self._lock:
            queries_snapshot = dict(self.queries)
            updates_snapshot = dict(self.updates)
        total_queries = sum(queries_snapshot.values())
        total_updates = sum(updates_snapshot.values())
        total = total_queries + total_updates
        if total == 0:
            raise CostModelError("no operations recorded yet")
        queries = tuple(
            (count / total_queries, QuerySpec(i, j, kind))
            for (i, j, kind), count in sorted(queries_snapshot.items())
        )
        updates = tuple(
            (count / total_updates, UpdateSpec(i))
            for i, count in sorted(updates_snapshot.items())
        )
        p_up = total_updates / total
        return OperationMix(queries=queries, updates=updates), p_up

    def reset(self) -> None:
        with self._lock:
            self.queries.clear()
            self.updates.clear()


class _CatchUpObserver:
    """Accumulates dirty regions while a replacement ASR builds unlocked.

    Subscribed to the object base for the duration of a retune's bulk
    build.  Events are delivered synchronously on the mutator's thread —
    which holds the manager's write lock per the ``exclusive()``
    contract — so computing the region *at event time* (it reads
    event-time graph state, exactly like the manager's ``_enqueue``) is
    safe; the observer's own lock covers the merge against the retune
    thread's final :meth:`take`.
    """

    def __init__(self, db, path: PathExpression) -> None:
        self._db = db
        self._path = path
        self._lock = threading.Lock()
        self._region = None

    def __call__(self, event: Event) -> None:
        region = analyze_event(self._db, self._path, event)
        if not region:
            return
        with self._lock:
            if self._region is None:
                self._region = region
            else:
                self._region = merge_regions(self._region, region)

    def take(self):
        with self._lock:
            region, self._region = self._region, None
            return region


@dataclass
class TuningDecision:
    """What the adaptive designer decided and why."""

    current_cost: float
    best: DesignChoice
    retuned: bool

    def describe(self) -> str:
        action = "switched to" if self.retuned else "kept current design over"
        return (
            f"current {self.current_cost:.1f} pages/op; {action} "
            f"{self.best.describe()}"
        )


class AdaptiveDesigner:
    """Closes the monitor → advise → re-materialize loop for one ASR."""

    def __init__(
        self,
        manager: ASRManager,
        asr: AccessSupportRelation,
        recorder: WorkloadRecorder,
        object_sizes: dict[str, int] | None = None,
        improvement_threshold: float = 1.2,
    ) -> None:
        if asr not in manager.asrs:
            raise CostModelError("the ASR must be registered with the manager")
        if improvement_threshold < 1.0:
            raise CostModelError("improvement threshold must be >= 1")
        self.manager = manager
        self.asr = asr
        self.recorder = recorder
        self.object_sizes = object_sizes
        self.improvement_threshold = improvement_threshold

    # ------------------------------------------------------------------

    def measured_profile(self):
        return profile_from_database(
            self.manager.db, self.asr.path, self.object_sizes
        )

    def recommend(self) -> TuningDecision:
        """Advise on the recorded workload without changing anything."""
        mix, p_up = self.recorder.to_mix()
        # Profiling walks the live object graph; hold the read side so a
        # concurrent update transaction cannot tear the measurement.
        with self.manager.shared():
            profile = self.measured_profile()
            advisor = DesignAdvisor(profile)
            best = advisor.best(mix, p_up)
            current_cost = self._cost_of_current(advisor, mix, p_up)
        should_switch = (
            best.cost * self.improvement_threshold < current_cost
            and not self._is_current(best)
        )
        return TuningDecision(current_cost, best, should_switch)

    def retune(self) -> TuningDecision:
        """Recommend and, when clearly better, re-materialize the ASR.

        Safe under concurrency: see the module docstring.  The old ASR
        keeps serving readers throughout the bulk build and is only
        replaced — atomically, with one epoch bump — once the
        replacement has absorbed every update that landed mid-build.
        Any failure along the way leaves the old ASR registered and
        consistent (rollback by construction: nothing was dropped yet).
        """
        decision = self.recommend()
        self.apply(decision)
        return decision

    def apply(self, decision: TuningDecision) -> bool:
        """Re-materialize per an already-made decision; True when applied.

        The :class:`~repro.resilience.advisor.AdvisorLoop` separates
        deciding (its own hysteresis/cooldown gates on top of
        :meth:`recommend`) from acting; this is the acting half.
        """
        if decision.retuned and decision.best.extension is not None:
            self._rematerialize(decision.best)
            return True
        return False

    def _rematerialize(self, best: DesignChoice) -> AccessSupportRelation:
        # The cost model's decomposition indices are type indices
        # (m = n); translate the borders to ASR column indices.
        column_borders = tuple(
            self.asr.path.column_of(border)
            for border in best.decomposition.borders
        )
        injector = self.manager._injector()
        observer = _CatchUpObserver(self.manager.db, self.asr.path)
        self.manager.db.subscribe(observer)
        try:
            reach(injector, "asr.retune.build")
            replacement = AccessSupportRelation.build(
                self.manager.db,
                self.asr.path,
                best.extension,
                Decomposition(column_borders),
            )
            with self.manager.exclusive():
                # Mutators need this lock, so no further events can
                # interleave between catch-up and swap.
                self.manager.db.unsubscribe(observer)
                region = observer.take()
                if region:
                    added, removed = neighbourhood_delta(
                        self.manager.db,
                        self.asr.path,
                        replacement.extension,
                        replacement.extension_relation,
                        region,
                    )
                    replacement.apply_delta(added, removed, None)
                reach(injector, "asr.retune.register")
                self.manager.replace(self.asr, replacement)
        finally:
            # On the success path the observer is already gone; on any
            # failure this is the whole rollback — the old ASR was never
            # dropped, so it is still registered, consistent, serving.
            try:
                self.manager.db.unsubscribe(observer)
            except ValueError:
                pass
        self.asr = replacement
        return replacement

    # ------------------------------------------------------------------

    def _cost_of_current(self, advisor: DesignAdvisor, mix, p_up) -> float:
        type_borders = self._type_borders()
        return advisor.model.mix_cost(
            self.asr.extension, Decomposition(type_borders), mix, p_up
        )

    def _type_borders(self) -> tuple[int, ...]:
        """The current decomposition expressed over type indices.

        A set-valued step owns two ASR columns (collection OID and
        element) that map to the same type index, so when *both* appear
        as decomposition borders the type-level view is strictly coarser
        than the physical design — the cost model prices one fewer
        partition than actually materialized.  That collapse is logged
        rather than silent, so a mispriced current design is visible in
        the advisor's output instead of quietly skewing decisions.
        """
        columns = tuple(dict.fromkeys(self.asr.decomposition.borders))
        borders = tuple(
            self.asr.path.type_index_of_column(column) for column in columns
        )
        unique = tuple(dict.fromkeys(borders))
        if len(unique) != len(borders):
            collapsed = tuple(
                column
                for column, border in zip(columns, borders)
                if borders.count(border) > 1
            )
            _logger.warning(
                "decomposition columns %s of %s collapse to type borders "
                "%s; the cost model prices a coarser decomposition than "
                "the one materialized",
                collapsed,
                self.asr.path,
                unique,
            )
        return unique

    def _is_current(self, choice: DesignChoice) -> bool:
        if choice.extension is None:
            return False
        # Compare by value, not identity: advisors constructed per-sweep
        # hand back fresh DesignChoice objects, and an identity compare
        # would report "not current" forever — oscillating the designer
        # into re-materializing the same design on every sweep.
        return (
            choice.extension == self.asr.extension
            and choice.decomposition is not None
            and choice.decomposition.borders == self._type_borders()
        )
