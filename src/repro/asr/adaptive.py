"""Self-adjusting physical design (the paper's stated future work).

Section 7: "the cost model is intended to be integrated into our
object-oriented DBMS in order to verify a given physical database
design, or even to automate the task of physical database design.  Thus,
for a recorded database usage pattern the system could
(semi-)automatically adjust the physical database design."

This module implements that loop:

1. :class:`WorkloadRecorder` counts the executed operations — forward and
   backward queries by range, ``ins_i``-style updates — either via
   explicit ``record_*`` calls or by observing an
   :class:`~repro.query.evaluator.QueryEvaluator` and the object base's
   change events;
2. :meth:`WorkloadRecorder.to_mix` turns the log into the cost model's
   ``(OperationMix, P_up)``;
3. :class:`AdaptiveDesigner` measures the live profile
   (:func:`~repro.costmodel.profiling.profile_from_database`), runs the
   :class:`~repro.costmodel.advisor.DesignAdvisor`, and — when the best
   design beats the current one by a configurable factor — re-materializes
   the ASR under the new (extension, decomposition).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.asr.asr import AccessSupportRelation
from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.asr.manager import ASRManager
from repro.costmodel.advisor import DesignAdvisor, DesignChoice
from repro.costmodel.opmix import OperationMix, QuerySpec, UpdateSpec
from repro.costmodel.profiling import profile_from_database
from repro.errors import CostModelError
from repro.gom.events import AttributeSet, Event, SetInserted, SetRemoved
from repro.gom.paths import PathExpression


class WorkloadRecorder:
    """Counts the operations executed against one path expression.

    Query ranges are recorded as ``(i, j, kind)`` triples and updates as
    the edge index ``i`` of the paper's ``ins_i``.  The recorder can be
    attached to an object base to count update events automatically.
    """

    def __init__(self, path: PathExpression) -> None:
        self.path = path
        self.queries: Counter[tuple[int, int, str]] = Counter()
        self.updates: Counter[int] = Counter()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_query(self, i: int, j: int, kind: str, count: int = 1) -> None:
        if kind not in ("fw", "bw"):
            raise CostModelError(f"query kind must be 'fw' or 'bw', got {kind!r}")
        if not 0 <= i < j <= self.path.n:
            raise CostModelError(f"invalid query range ({i}, {j})")
        self.queries[(i, j, kind)] += count

    def record_update(self, i: int, count: int = 1) -> None:
        if not 0 <= i < self.path.n:
            raise CostModelError(f"invalid update position {i}")
        self.updates[i] += count

    def attach(self, db) -> None:
        """Count update events on the object base automatically."""
        db.subscribe(self._on_event)

    def _on_event(self, event: Event) -> None:
        for s, step in enumerate(self.path.steps, start=1):
            if isinstance(event, AttributeSet):
                if step.attribute == event.attribute and event.type_name == step.domain_type:
                    self.record_update(s - 1)
            elif isinstance(event, (SetInserted, SetRemoved)):
                if step.collection_type == event.set_type:
                    self.record_update(s - 1)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    @property
    def total_queries(self) -> int:
        return sum(self.queries.values())

    @property
    def total_updates(self) -> int:
        return sum(self.updates.values())

    @property
    def total_operations(self) -> int:
        return self.total_queries + self.total_updates

    def to_mix(self) -> tuple[OperationMix, float]:
        """The recorded workload as ``(OperationMix, P_up)``."""
        if self.total_operations == 0:
            raise CostModelError("no operations recorded yet")
        queries = tuple(
            (count / self.total_queries, QuerySpec(i, j, kind))
            for (i, j, kind), count in sorted(self.queries.items())
        )
        updates = tuple(
            (count / self.total_updates, UpdateSpec(i))
            for i, count in sorted(self.updates.items())
        )
        if not queries:
            queries = ()
        p_up = self.total_updates / self.total_operations
        return OperationMix(queries=queries, updates=updates), p_up

    def reset(self) -> None:
        self.queries.clear()
        self.updates.clear()


@dataclass
class TuningDecision:
    """What the adaptive designer decided and why."""

    current_cost: float
    best: DesignChoice
    retuned: bool

    def describe(self) -> str:
        action = "switched to" if self.retuned else "kept current design over"
        return (
            f"current {self.current_cost:.1f} pages/op; {action} "
            f"{self.best.describe()}"
        )


class AdaptiveDesigner:
    """Closes the monitor → advise → re-materialize loop for one ASR."""

    def __init__(
        self,
        manager: ASRManager,
        asr: AccessSupportRelation,
        recorder: WorkloadRecorder,
        object_sizes: dict[str, int] | None = None,
        improvement_threshold: float = 1.2,
    ) -> None:
        if asr not in manager.asrs:
            raise CostModelError("the ASR must be registered with the manager")
        if improvement_threshold < 1.0:
            raise CostModelError("improvement threshold must be >= 1")
        self.manager = manager
        self.asr = asr
        self.recorder = recorder
        self.object_sizes = object_sizes
        self.improvement_threshold = improvement_threshold

    # ------------------------------------------------------------------

    def measured_profile(self):
        return profile_from_database(
            self.manager.db, self.asr.path, self.object_sizes
        )

    def recommend(self) -> TuningDecision:
        """Advise on the recorded workload without changing anything."""
        mix, p_up = self.recorder.to_mix()
        profile = self.measured_profile()
        advisor = DesignAdvisor(profile)
        best = advisor.best(mix, p_up)
        current_cost = self._cost_of_current(advisor, mix, p_up)
        should_switch = (
            best.cost * self.improvement_threshold < current_cost
            and not self._is_current(best)
        )
        return TuningDecision(current_cost, best, should_switch)

    def retune(self) -> TuningDecision:
        """Recommend and, when clearly better, re-materialize the ASR."""
        decision = self.recommend()
        if decision.retuned and decision.best.extension is not None:
            # The cost model's decomposition indices are type indices
            # (m = n); translate the borders to ASR column indices.
            column_borders = tuple(
                self.asr.path.column_of(border)
                for border in decision.best.decomposition.borders
            )
            replacement = AccessSupportRelation.build(
                self.manager.db,
                self.asr.path,
                decision.best.extension,
                Decomposition(column_borders),
            )
            self.manager.drop(self.asr)
            self.manager.register(replacement)
            self.asr = replacement
        return decision

    # ------------------------------------------------------------------

    def _cost_of_current(self, advisor: DesignAdvisor, mix, p_up) -> float:
        type_borders = self._type_borders()
        return advisor.model.mix_cost(
            self.asr.extension, Decomposition(type_borders), mix, p_up
        )

    def _type_borders(self) -> tuple[int, ...]:
        """The current decomposition expressed over type indices."""
        borders = []
        for column in self.asr.decomposition.borders:
            borders.append(self.asr.path.type_index_of_column(column))
        unique = tuple(dict.fromkeys(borders))
        return unique

    def _is_current(self, choice: DesignChoice) -> bool:
        if choice.extension is None:
            return False
        return (
            choice.extension is self.asr.extension
            and choice.decomposition is not None
            and choice.decomposition.borders == self._type_borders()
        )
