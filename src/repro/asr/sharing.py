"""Sharing of access support relations between paths (section 5.4).

Two path expressions that traverse a common attribute sub-chain

    t0 .A1.….Ai  .A_{i+1}.….A_{i+j}  .A_{i+j+1}.….An       (1)
    t0'.A1'.….Ai'.A_{i+1}.….A_{i+j}  .A'_{i+j+1}.….A'_{n'}  (2)

can share the partition over the common middle ``A_{i+1}.….A_{i+j}`` —
*in general only under the full extension*, because a shared partition
must contain every hop of the common sub-chain regardless of whether the
surrounding path prefix/suffix exists.  Exceptions (also per the paper):

* both paths start with the common part (``i = i' = 0``) — sharing is
  also legal for **left**-complete extensions;
* both paths end with the common part (``i+j = n``, ``i'+j = n'``) —
  sharing is also legal for **right**-complete extensions.

This module detects maximal shareable overlaps and proposes the induced
decompositions ``(0, i, i+j, n)`` / ``(0, i', i'+j, n')``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension
from repro.gom.paths import PathExpression


@dataclass(frozen=True)
class SharedSegment:
    """A common sub-chain of two paths, in type-index coordinates.

    The segment covers attributes ``A_{start_a+1} … A_{start_a+length}``
    of ``path_a`` and the analogous range of ``path_b``; the partitions
    over columns ``column_of(start) … column_of(start+length)`` of the two
    ASRs are identical relations and can be stored once.
    """

    path_a: PathExpression
    path_b: PathExpression
    start_a: int
    start_b: int
    length: int

    @property
    def end_a(self) -> int:
        return self.start_a + self.length

    @property
    def end_b(self) -> int:
        return self.start_b + self.length

    def legal_extensions(self) -> set[Extension]:
        """Extensions under which this segment may be shared (section 5.4)."""
        legal = {Extension.FULL}
        if self.start_a == 0 and self.start_b == 0:
            legal.add(Extension.LEFT)
        if self.end_a == self.path_a.n and self.end_b == self.path_b.n:
            legal.add(Extension.RIGHT)
        return legal

    def decomposition_a(self) -> Decomposition:
        return _bordered(self.path_a, self.start_a, self.end_a)

    def decomposition_b(self) -> Decomposition:
        return _bordered(self.path_b, self.start_b, self.end_b)


def _bordered(path: PathExpression, start: int, end: int) -> Decomposition:
    borders = sorted({0, path.column_of(start), path.column_of(end), path.m})
    return Decomposition(tuple(borders))


def _hops(path: PathExpression) -> list[tuple[str, str, str, str | None]]:
    """A hashable signature per hop: (domain, attribute, range, collection)."""
    return [
        (step.domain_type, step.attribute, step.range_type, step.collection_type)
        for step in path.steps
    ]


def shareable_segments(
    path_a: PathExpression, path_b: PathExpression, min_length: int = 1
) -> list[SharedSegment]:
    """All maximal common sub-chains of the two paths.

    A sub-chain matches when the attribute hops agree exactly (same domain
    type, attribute name, range type, and set-occurrence shape), which
    guarantees the auxiliary relations — and hence the partitions — are
    the same relations.
    """
    hops_a, hops_b = _hops(path_a), _hops(path_b)
    segments: list[SharedSegment] = []
    for a in range(len(hops_a)):
        for b in range(len(hops_b)):
            if hops_a[a] != hops_b[b]:
                continue
            # Maximality: skip if the previous hops also match.
            if a > 0 and b > 0 and hops_a[a - 1] == hops_b[b - 1]:
                continue
            length = 0
            while (
                a + length < len(hops_a)
                and b + length < len(hops_b)
                and hops_a[a + length] == hops_b[b + length]
            ):
                length += 1
            if length >= min_length:
                segments.append(SharedSegment(path_a, path_b, a, b, length))
    return segments


def best_shared_design(
    path_a: PathExpression, path_b: PathExpression
) -> SharedSegment | None:
    """The longest shareable segment, or None when nothing overlaps."""
    segments = shareable_segments(path_a, path_b)
    if not segments:
        return None
    return max(segments, key=lambda segment: segment.length)


# ----------------------------------------------------------------------
# physical sharing: one stored partition, several access support relations
# ----------------------------------------------------------------------


class SharedASRBundle:
    """Two ASRs physically sharing the partition over a common sub-chain.

    Section 5.4's observation made executable: when two path expressions
    traverse the same attribute hops, the partitions over the common
    segment are the *same relation* (for the extensions
    :meth:`SharedSegment.legal_extensions` allows), so one copy — one
    pair of B+ trees — can serve both ASRs.

    The shared :class:`~repro.asr.asr.StoredPartition` aggregates witness
    reference counts from both extensions; each ASR's
    :meth:`~repro.asr.asr.AccessSupportRelation.apply_delta` keeps it
    maintained, and rows physically disappear only when *neither*
    extension retains a witness.  Register both ASRs with one
    :class:`~repro.asr.manager.ASRManager` to get automatic maintenance.
    """

    def __init__(self, asr_a, asr_b, segment: SharedSegment, view_a, view_b):
        self.asr_a = asr_a
        self.asr_b = asr_b
        self.segment = segment
        #: The two coordinate views over the one physical store; they
        #: alias the same reference counts and B+ trees.
        self.view_a = view_a
        self.view_b = view_b

    @property
    def shared_partition(self):
        """The physical store (path A's coordinate view of it)."""
        return self.view_a

    @classmethod
    def build(
        cls,
        db,
        path_a: PathExpression,
        path_b: PathExpression,
        extension: Extension = Extension.FULL,
        segment: SharedSegment | None = None,
        manager=None,
    ) -> "SharedASRBundle":
        """Materialize both ASRs with the common partition stored once.

        When a :class:`~repro.asr.manager.ASRManager` is passed via
        ``manager``, both ASRs are registered with it immediately, so
        they participate in its (eager or batched) maintenance — the
        shared partition's witness counts then aggregate deltas from
        both sharers under whatever
        :class:`~repro.context.ExecutionContext` the manager charges.
        """
        from collections import Counter

        from repro.asr.asr import AccessSupportRelation
        from repro.errors import DecompositionError

        segment = segment or best_shared_design(path_a, path_b)
        if segment is None:
            raise DecompositionError("the two paths share no attribute sub-chain")
        if extension not in segment.legal_extensions():
            raise DecompositionError(
                f"extension {extension.value!r} cannot share this segment "
                f"(legal: {sorted(e.value for e in segment.legal_extensions())})"
            )
        asr_a = AccessSupportRelation.build(
            db, path_a, extension, segment.decomposition_a()
        )
        asr_b = AccessSupportRelation.build(
            db, path_b, extension, segment.decomposition_b()
        )
        column_a = path_a.column_of(segment.start_a)
        column_b = path_b.column_of(segment.start_b)
        partition_a = asr_a.partition_at(column_a)
        partition_b = asr_b.partition_at(column_b)
        rows_a = set(partition_a.rows())
        rows_b = set(partition_b.rows())
        assert rows_a == rows_b, (
            "shared-segment projections differ; the segment is not shareable"
        )
        # One physical store: merge witness counts, load the trees once,
        # then alias both partitions' storage to it.  Each partition keeps
        # its own column coordinates (the same hops sit at different
        # offsets in the two paths), so projection stays per-path while
        # the counts and B+ trees are shared objects.
        merged: Counter = Counter()
        merged.update(partition_a._counts)
        merged.update(partition_b._counts)
        partition_a.bulk_load(list(merged.keys()))
        partition_a._counts = merged
        partition_b._counts = merged
        partition_b.forward_tree = partition_a.forward_tree
        partition_b.backward_tree = partition_a.backward_tree
        partition_a.shared = True
        partition_b.shared = True
        bundle = cls(asr_a, asr_b, segment, partition_a, partition_b)
        if manager is not None:
            manager.register(asr_a)
            manager.register(asr_b)
        return bundle

    # ------------------------------------------------------------------

    @property
    def bytes_saved(self) -> int:
        """Storage avoided by keeping one copy instead of two."""
        return self.shared_partition.byte_size

    def consistency_check(self, db) -> None:
        """Both extensions correct; shared counts = sum of both witness sets."""
        from collections import Counter

        from repro.asr.extensions import build_extension

        self.asr_a.consistency_check(db)
        self.asr_b.consistency_check(db)
        expected: Counter = Counter()
        for asr, view in ((self.asr_a, self.view_a), (self.asr_b, self.view_b)):
            relation = build_extension(db, asr.path, asr.extension)
            for row in relation.rows:
                projected = view.project(row)
                if projected is not None:
                    expected[projected] += 1
        assert expected == self.shared_partition._counts, (
            "shared partition witness counts drifted"
        )
        stored = {v for _, v in self.shared_partition.forward_tree.items()}
        assert stored == set(expected), "shared partition trees drifted"

    def describe(self) -> str:
        return (
            f"paths {self.asr_a.path} and {self.asr_b.path} share "
            f"{self.segment.length} hop(s); one partition of "
            f"{self.shared_partition.tuple_count} tuples stored once "
            f"({self.bytes_saved} bytes saved)"
        )
