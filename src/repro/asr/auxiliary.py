"""Auxiliary relations ``E_0 … E_{n-1}`` (Definition 3.3).

For each attribute ``A_j`` of a path expression the auxiliary relation
``E_{j-1}`` materializes the single hop:

* **binary** ``(id(o_{j-1}), id(o_j))`` when ``A_j`` is single-valued —
  for every object ``o_{j-1}`` in the extent of ``t_{j-1}`` whose ``A_j``
  is defined (if ``t_j`` is atomic, ``id(o_j)`` is the value itself,
  footnote 3);
* **ternary** ``(id(o_{j-1}), id(o'_j), id(o_j))`` when ``A_j`` is
  set-valued — one tuple per member, and the special tuple
  ``(id(o_{j-1}), id(o'_j), NULL)`` when the set is empty.

The extensions of Definitions 3.4–3.7 are join chains over these.

**Parallel bulk build**: ``auxiliary_relation(..., workers=k)`` splits
the (sorted) source extent into contiguous chunks, builds a partial
relation per chunk on a :class:`~concurrent.futures.ThreadPoolExecutor`,
and merges the partials.  Each source object lands in exactly one chunk
and rows are a set, so the merged relation is *identical* to the
sequential build regardless of worker count or scheduling — the
property the bulk-build tests assert.  The object base is only read.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.asr.relation import Relation
from repro.gom.database import ObjectBase
from repro.gom.objects import OID
from repro.gom.paths import PathExpression
from repro.gom.types import NULL, AtomicType


def _set_step_rows(db: ObjectBase, step, oids) -> list[tuple]:
    rows: list[tuple] = []
    for oid in oids:
        collection = db.attr(oid, step.attribute)
        if collection is NULL:
            continue
        assert isinstance(collection, OID)
        members = db.members(collection)
        if not members:
            rows.append((oid, collection, NULL))
        else:
            for member in members:
                rows.append((oid, collection, member))
    return rows


def _single_step_rows(db: ObjectBase, step, oids) -> list[tuple]:
    rows: list[tuple] = []
    for oid in oids:
        value = db.attr(oid, step.attribute)
        if value is NULL:
            continue
        rows.append((oid, value))
    return rows


def _chunks(items: list, workers: int) -> list[list]:
    """Split ``items`` into at most ``workers`` contiguous chunks."""
    if not items:
        return []
    size = max(1, -(-len(items) // workers))  # ceil division
    return [items[i : i + size] for i in range(0, len(items), size)]


def auxiliary_relation(
    db: ObjectBase, path: PathExpression, j: int, workers: int | None = None
) -> Relation:
    """Build ``E_{j-1}`` for the step ``A_j`` (``j`` is 1-based, 1..n).

    ``workers`` (> 1) partitions the source extent across a thread pool;
    the result is identical to the sequential build.
    """
    step = path.steps[j - 1]
    schema = db.schema
    if step.is_set_occurrence:
        assert step.collection_type is not None
        columns = [
            f"OID_{step.domain_type}",
            f"OID_{step.collection_type}",
            _range_label(schema, step.range_type),
        ]
        make_rows = _set_step_rows
    else:
        columns = [f"OID_{step.domain_type}", _range_label(schema, step.range_type)]
        make_rows = _single_step_rows
    extent = sorted(db.extent(step.domain_type), key=lambda o: o.value)
    relation = Relation(columns)
    if workers is None or workers <= 1 or len(extent) <= 1:
        for row in make_rows(db, step, extent):
            relation.add(row)
        return relation
    chunks = _chunks(extent, workers)
    with ThreadPoolExecutor(max_workers=len(chunks)) as executor:
        partials = list(
            executor.map(lambda chunk: make_rows(db, step, chunk), chunks)
        )
    for partial in partials:
        for row in partial:
            relation.add(row)
    return relation


def auxiliary_relations(
    db: ObjectBase, path: PathExpression, workers: int | None = None
) -> list[Relation]:
    """All auxiliary relations ``[E_0, …, E_{n-1}]`` for ``path``."""
    return [
        auxiliary_relation(db, path, j, workers=workers)
        for j in range(1, path.n + 1)
    ]


def _range_label(schema, type_name: str) -> str:
    prefix = "VALUE" if isinstance(schema.lookup(type_name), AtomicType) else "OID"
    return f"{prefix}_{type_name}"
