"""Auxiliary relations ``E_0 … E_{n-1}`` (Definition 3.3).

For each attribute ``A_j`` of a path expression the auxiliary relation
``E_{j-1}`` materializes the single hop:

* **binary** ``(id(o_{j-1}), id(o_j))`` when ``A_j`` is single-valued —
  for every object ``o_{j-1}`` in the extent of ``t_{j-1}`` whose ``A_j``
  is defined (if ``t_j`` is atomic, ``id(o_j)`` is the value itself,
  footnote 3);
* **ternary** ``(id(o_{j-1}), id(o'_j), id(o_j))`` when ``A_j`` is
  set-valued — one tuple per member, and the special tuple
  ``(id(o_{j-1}), id(o'_j), NULL)`` when the set is empty.

The extensions of Definitions 3.4–3.7 are join chains over these.
"""

from __future__ import annotations

from repro.asr.relation import Relation
from repro.gom.database import ObjectBase
from repro.gom.objects import OID
from repro.gom.paths import PathExpression
from repro.gom.types import NULL, AtomicType


def auxiliary_relation(
    db: ObjectBase, path: PathExpression, j: int
) -> Relation:
    """Build ``E_{j-1}`` for the step ``A_j`` (``j`` is 1-based, 1..n)."""
    step = path.steps[j - 1]
    schema = db.schema
    if step.is_set_occurrence:
        assert step.collection_type is not None
        columns = [
            f"OID_{step.domain_type}",
            f"OID_{step.collection_type}",
            _range_label(schema, step.range_type),
        ]
        relation = Relation(columns)
        for oid in sorted(db.extent(step.domain_type), key=lambda o: o.value):
            collection = db.attr(oid, step.attribute)
            if collection is NULL:
                continue
            assert isinstance(collection, OID)
            members = db.members(collection)
            if not members:
                relation.add((oid, collection, NULL))
            else:
                for member in members:
                    relation.add((oid, collection, member))
        return relation
    columns = [f"OID_{step.domain_type}", _range_label(schema, step.range_type)]
    relation = Relation(columns)
    for oid in sorted(db.extent(step.domain_type), key=lambda o: o.value):
        value = db.attr(oid, step.attribute)
        if value is NULL:
            continue
        relation.add((oid, value))
    return relation


def auxiliary_relations(db: ObjectBase, path: PathExpression) -> list[Relation]:
    """All auxiliary relations ``[E_0, …, E_{n-1}]`` for ``path``."""
    return [auxiliary_relation(db, path, j) for j in range(1, path.n + 1)]


def _range_label(schema, type_name: str) -> str:
    prefix = "VALUE" if isinstance(schema.lookup(type_name), AtomicType) else "OID"
    return f"{prefix}_{type_name}"
