"""A minimal relational algebra for access support relations.

The paper composes access support relations from the auxiliary relations
``E_0 … E_{n-1}`` with four join operators — natural, full outer, left
outer and right outer — always joining *the last column of the left
operand with the first column of the right operand* (section 3, the
``⋈ / ⟗ / ⟕ / ⟖`` notation).  This module provides exactly that algebra
over in-memory set-of-tuple relations whose cells are OIDs, atomic
values, or NULL.

NULL join keys never match (standard outer-join semantics); this is what
makes the chained outer joins compute maximal partial paths.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import RelationError
from repro.gom.objects import Cell
from repro.gom.types import NULL


class JoinKind(str, Enum):
    """The four path-composition joins of section 3."""

    NATURAL = "natural"
    LEFT_OUTER = "left_outer"
    RIGHT_OUTER = "right_outer"
    FULL_OUTER = "full_outer"


class Relation:
    """An unordered, duplicate-free relation over ``Cell`` tuples.

    ``columns`` are display labels only; positions identify columns.
    Instances are mutable (rows can be added/removed — index maintenance
    needs that) but all algebra operators return fresh relations.
    """

    __slots__ = ("columns", "_rows")

    def __init__(
        self, columns: Sequence[str], rows: Iterable[tuple[Cell, ...]] = ()
    ) -> None:
        self.columns: tuple[str, ...] = tuple(columns)
        self._rows: set[tuple[Cell, ...]] = set()
        for row in rows:
            self.add(row)

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def rows(self) -> frozenset[tuple[Cell, ...]]:
        """An immutable snapshot of the rows."""
        return frozenset(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Cell, ...]]:
        return iter(self._rows)

    def __contains__(self, row: tuple[Cell, ...]) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations used as values only
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:
        return f"Relation({list(self.columns)}, {len(self)} rows)"

    def add(self, row: tuple[Cell, ...]) -> None:
        """Insert ``row`` after checking its arity."""
        if len(row) != len(self.columns):
            raise RelationError(
                f"row arity {len(row)} does not match relation arity "
                f"{len(self.columns)}"
            )
        self._rows.add(tuple(row))

    def discard(self, row: tuple[Cell, ...]) -> None:
        self._rows.discard(tuple(row))

    def copy(self) -> "Relation":
        clone = Relation(self.columns)
        clone._rows = set(self._rows)
        return clone

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------

    def join(self, other: "Relation", kind: JoinKind = JoinKind.NATURAL) -> "Relation":
        """Join on ``self``'s last column = ``other``'s first column.

        The shared column appears once in the result, so the result arity
        is ``self.arity + other.arity - 1``.  Unmatched rows are padded
        with NULL according to ``kind``; NULL keys never match.
        """
        if self.arity == 0 or other.arity == 0:
            raise RelationError("cannot join zero-arity relations")
        result = Relation(self.columns + other.columns[1:])
        right_index: dict[Cell, list[tuple[Cell, ...]]] = defaultdict(list)
        for right_row in other._rows:
            if right_row[0] is not NULL:
                right_index[right_row[0]].append(right_row)
        matched_right: set[tuple[Cell, ...]] = set()
        left_pad = (NULL,) * (self.arity - 1)
        right_pad = (NULL,) * (other.arity - 1)
        keep_left = kind in (JoinKind.LEFT_OUTER, JoinKind.FULL_OUTER)
        keep_right = kind in (JoinKind.RIGHT_OUTER, JoinKind.FULL_OUTER)
        for left_row in self._rows:
            key = left_row[-1]
            matches = right_index.get(key, ()) if key is not NULL else ()
            if matches:
                for right_row in matches:
                    result._rows.add(left_row + right_row[1:])
                    matched_right.add(right_row)
            elif keep_left:
                result._rows.add(left_row + right_pad)
        if keep_right:
            for right_row in other._rows:
                if right_row not in matched_right:
                    result._rows.add(left_pad + right_row)
        return result

    def project(
        self, columns: Sequence[int], drop_all_null: bool = True
    ) -> "Relation":
        """Project onto column positions, eliminating duplicates.

        ``drop_all_null`` removes rows whose projected cells are all NULL —
        such rows carry no path information and the paper's partition
        cardinality formulas do not count them.
        """
        for column in columns:
            if not 0 <= column < self.arity:
                raise RelationError(f"column {column} out of range 0..{self.arity - 1}")
        labels = [self.columns[c] for c in columns]
        result = Relation(labels)
        for row in self._rows:
            projected = tuple(row[c] for c in columns)
            if drop_all_null and all(cell is NULL for cell in projected):
                continue
            result._rows.add(projected)
        return result

    def slice(self, first: int, last: int, drop_all_null: bool = True) -> "Relation":
        """Project onto the contiguous column range ``first..last`` inclusive."""
        return self.project(range(first, last + 1), drop_all_null)

    def select(self, column: int, value: Cell) -> "Relation":
        """Rows whose ``column`` equals ``value``."""
        result = Relation(self.columns)
        result._rows = {row for row in self._rows if row[column] == value}
        return result

    def where(self, predicate: Callable[[tuple[Cell, ...]], bool]) -> "Relation":
        result = Relation(self.columns)
        result._rows = {row for row in self._rows if predicate(row)}
        return result

    def rename(self, columns: Sequence[str]) -> "Relation":
        if len(columns) != self.arity:
            raise RelationError("rename must preserve arity")
        result = Relation(columns)
        result._rows = set(self._rows)
        return result

    def union(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise RelationError("union operands must have equal arity")
        result = Relation(self.columns)
        result._rows = self._rows | other._rows
        return result

    def difference(self, other: "Relation") -> "Relation":
        if other.arity != self.arity:
            raise RelationError("difference operands must have equal arity")
        result = Relation(self.columns)
        result._rows = self._rows - other._rows
        return result

    # ------------------------------------------------------------------
    # inspection helpers
    # ------------------------------------------------------------------

    def distinct(self, column: int) -> set[Cell]:
        """Distinct non-NULL values of a column."""
        return {row[column] for row in self._rows if row[column] is not NULL}

    def complete_rows(self) -> "Relation":
        """Rows with no NULL anywhere (complete paths)."""
        return self.where(lambda row: all(cell is not NULL for cell in row))

    def pretty(self, limit: int = 20) -> str:
        """Render the relation as a fixed-width text table (for examples)."""
        header = " | ".join(self.columns)
        separator = "-" * len(header)
        body_rows = sorted(self._rows, key=lambda r: tuple(_sort_key(c) for c in r))
        lines = [header, separator]
        for row in body_rows[:limit]:
            lines.append(" | ".join(str(cell) for cell in row))
        if len(body_rows) > limit:
            lines.append(f"... ({len(body_rows) - limit} more rows)")
        return "\n".join(lines)


def _sort_key(cell: Cell) -> tuple:
    from repro.gom.objects import OID

    if cell is NULL:
        return (0, "")
    if isinstance(cell, OID):
        return (1, cell.value)
    return (2, str(cell))


def fold_join(relations: Sequence[Relation], kind: JoinKind) -> Relation:
    """Left-to-right fold: ``((R0 ∘ R1) ∘ R2) ∘ …`` with join ``kind``."""
    if not relations:
        raise RelationError("cannot fold an empty sequence of relations")
    result = relations[0]
    for relation in relations[1:]:
        result = result.join(relation, kind)
    return result


def fold_join_right(relations: Sequence[Relation], kind: JoinKind) -> Relation:
    """Right-to-left fold: ``R0 ∘ (R1 ∘ (… ∘ R_{n-1}))`` with join ``kind``."""
    if not relations:
        raise RelationError("cannot fold an empty sequence of relations")
    result = relations[-1]
    for relation in reversed(relations[:-1]):
        result = relation.join(result, kind)
    return result
