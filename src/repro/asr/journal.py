"""Crash-consistency state machine and intent journals for stored ASRs.

The batched flush pipeline (:mod:`repro.asr.manager`) applies one
coalesced multi-page delta per ASR.  A failure mid-delta must never
leave an ASR *silently* torn — a torn ASR returns wrong query results —
so every delta application follows a write-ahead intent protocol:

1. the manager records an :class:`IntentJournal` (the coalesced dirty
   region, the flush epoch, and the computed row delta) and marks the
   ASR :attr:`ASRState.APPLYING`;
2. the delta is applied to the logical relation and the partition trees;
3. the journal is deleted and the ASR returns to
   :attr:`ASRState.CONSISTENT`.

A crash or storage fault between 1 and 3 leaves the ASR
:attr:`ASRState.QUARANTINED` with its journal intact: queries refuse to
read it (the planner falls back to another decomposition or to
unsupported evaluation) and :meth:`~repro.asr.manager.ASRManager.recover`
replays the journal by recomputing the neighbourhood delta against the
*current* object graph — idempotent by construction, because the
recomputation derives the correct post-state rather than redoing
possibly half-applied operations.

Updates arriving while an ASR is quarantined are absorbed into its
journal's dirty region (:meth:`IntentJournal.absorb`), so one recovery
pass heals both the torn flush and everything that happened since.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.asr.maintenance import DirtyRegion, merge_regions
from repro.gom.objects import Cell

__all__ = ["ASRState", "IntentJournal"]


class ASRState(Enum):
    """Maintenance state of one access support relation."""

    #: The stored state equals what a from-scratch rebuild would produce
    #: (up to pending-but-journalled work); queries may read it.
    CONSISTENT = "consistent"
    #: A journalled delta is being applied right now.  Transient within
    #: one flush; never observed by queries in single-threaded use.
    APPLYING = "applying"
    #: A crash or fault interrupted a delta: the trees may be torn.
    #: Queries must not read the ASR until it is recovered or rebuilt.
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class IntentJournal:
    """The write-ahead intent of one delta application.

    ``region`` is sufficient for recovery (the neighbourhood recompute
    re-derives the correct rows from the live graph); ``added`` and
    ``removed`` record what the interrupted flush *intended* so that
    diagnostics (``repro doctor``) can show the blast radius.
    """

    region: DirtyRegion
    epoch: int
    added: frozenset[tuple[Cell, ...]] = field(default_factory=frozenset)
    removed: frozenset[tuple[Cell, ...]] = field(default_factory=frozenset)

    def absorb(self, region: DirtyRegion) -> "IntentJournal":
        """This journal widened to also cover ``region``.

        Used while the ASR is quarantined: later updates merge their
        dirty regions here instead of touching the torn trees, so
        recovery replays everything at once.
        """
        return IntentJournal(
            merge_regions(self.region, region), self.epoch, self.added, self.removed
        )

    def describe(self) -> str:
        return (
            f"epoch {self.epoch}: {len(self.region.anchors)} anchor(s), "
            f"{len(self.region.dead)} dead OID(s), intent "
            f"+{len(self.added)}/-{len(self.removed)} row(s)"
        )
