"""The four extensions of an access support relation (Defs. 3.4–3.7).

Given the auxiliary relations ``E_0 … E_{n-1}`` of a path:

* ``E_can   = E_0 ⋈ E_1 ⋈ … ⋈ E_{n-1}``      — complete paths only;
* ``E_full  = E_0 ⟗ E_1 ⟗ … ⟗ E_{n-1}``      — all maximal partial paths;
* ``E_left  = ((E_0 ⟕ E_1) ⟕ …) ⟕ E_{n-1}``  — partial paths from ``t_0``;
* ``E_right = E_0 ⟖ (… ⟖ (E_{n-2} ⟖ E_{n-1}))`` — partial paths into ``t_n``.

The natural-join chain is associative; the outer-join chains are
evaluated with the parenthesization the definitions prescribe (left
fold for full/left, right fold for right-complete).  With the
NULL-keys-never-match rule this computes exactly the maximal-partial-path
semantics illustrated by the paper's Company example, which the test
suite cross-checks against a direct object-graph oracle.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.asr.auxiliary import auxiliary_relations
from repro.asr.relation import JoinKind, Relation, fold_join, fold_join_right
from repro.gom.types import NULL
from repro.errors import RelationError
from repro.gom.database import ObjectBase
from repro.gom.paths import PathExpression


class Extension(str, Enum):
    """Which (partial) paths an access support relation stores."""

    CANONICAL = "can"
    FULL = "full"
    LEFT = "left"
    RIGHT = "right"

    @property
    def join_kind(self) -> JoinKind:
        return _JOIN_OF_EXTENSION[self]

    @property
    def keeps_left_partials(self) -> bool:
        """Does the extension contain paths that stop before ``t_n``?"""
        return self in (Extension.FULL, Extension.LEFT)

    @property
    def keeps_right_partials(self) -> bool:
        """Does the extension contain paths that do not start at ``t_0``?"""
        return self in (Extension.FULL, Extension.RIGHT)

    def supports_query(self, i: int, j: int, n: int) -> bool:
        """Eq. 35 applicability: can ``Q_{i,j}`` use this extension?

        * canonical — only the whole path (``i = 0`` and ``j = n``);
        * left-complete — any prefix (``i = 0``);
        * right-complete — any suffix (``j = n``);
        * full — any sub-range.
        """
        if self is Extension.CANONICAL:
            return i == 0 and j == n
        if self is Extension.LEFT:
            return i == 0
        if self is Extension.RIGHT:
            return j == n
        return True


_JOIN_OF_EXTENSION = {
    Extension.CANONICAL: JoinKind.NATURAL,
    Extension.FULL: JoinKind.FULL_OUTER,
    Extension.LEFT: JoinKind.LEFT_OUTER,
    Extension.RIGHT: JoinKind.RIGHT_OUTER,
}


def compose_extension(
    auxiliary: Sequence[Relation], extension: Extension
) -> Relation:
    """Compose pre-built auxiliary relations into the requested extension.

    The empty-set rule of Definition 3.3 puts tuples ``(o, set, NULL)``
    into the auxiliary relations; at the *last* step such tuples would
    survive even an inner-join chain.  Definition 3.4 states the canonical
    extension holds complete paths with "no NULL value somewhere along the
    path", and right-complete paths must reach ``t_n``, so those two
    extensions post-filter trailing empty-set stubs.
    """
    if not auxiliary:
        raise RelationError("a path has at least one auxiliary relation")
    if extension is Extension.RIGHT:
        joined = fold_join_right(list(auxiliary), JoinKind.RIGHT_OUTER)
        return joined.where(lambda row: row[-1] is not NULL)
    joined = fold_join(list(auxiliary), extension.join_kind)
    if extension is Extension.CANONICAL:
        return joined.complete_rows()
    return joined


def build_extension(
    db: ObjectBase,
    path: PathExpression,
    extension: Extension,
    workers: int | None = None,
) -> Relation:
    """Materialize the extension of the ASR for ``path`` from the object base.

    ``workers`` parallelizes the auxiliary-relation scans (see
    :func:`~repro.asr.auxiliary.auxiliary_relation`); the join chain
    itself is evaluated once, so the result is bit-identical to the
    sequential build.
    """
    return compose_extension(auxiliary_relations(db, path, workers=workers), extension)
