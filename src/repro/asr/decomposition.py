"""Decompositions of access support relations (Def. 3.8, Thm. 3.9).

A decomposition of an ``(m+1)``-column relation is a sequence of borders
``(0, i_1, …, i_k, m)``; the partitions are the column ranges
``[0..i_1], [i_1..i_2], …, [i_k..m]`` — adjacent partitions *share* their
border column, which is what makes every decomposition lossless
(Theorem 3.9): re-joining the partitions on the shared columns recovers
the undecomposed extension.

Partitions are materialized by projecting the extension onto their
columns (duplicates eliminated; rows that are entirely NULL carry no path
information and are dropped).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, Sequence

from repro.asr.extensions import Extension
from repro.asr.relation import JoinKind, Relation, fold_join, fold_join_right
from repro.errors import DecompositionError


@dataclass(frozen=True)
class Decomposition:
    """An ordered tuple of partition borders ``(0, i_1, …, m)``."""

    borders: tuple[int, ...]

    def __post_init__(self) -> None:
        borders = self.borders
        if len(borders) < 2:
            raise DecompositionError("a decomposition needs at least two borders")
        if borders[0] != 0:
            raise DecompositionError("decompositions must start at column 0")
        if any(b >= c for b, c in zip(borders, borders[1:])):
            raise DecompositionError(
                f"borders must be strictly increasing, got {borders}"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, *borders: int) -> "Decomposition":
        return cls(tuple(borders))

    @classmethod
    def none(cls, m: int) -> "Decomposition":
        """The trivial decomposition ``(0, m)`` — no decomposition."""
        return cls((0, m))

    @classmethod
    def binary(cls, m: int) -> "Decomposition":
        """The finest decomposition ``(0, 1, …, m)`` into binary partitions."""
        return cls(tuple(range(m + 1)))

    @classmethod
    def all_for(cls, m: int) -> Iterator["Decomposition"]:
        """Every decomposition of an ``(m+1)``-column relation (2^(m-1) of them)."""
        inner = range(1, m)
        for count in range(0, m):
            for chosen in combinations(inner, count):
                yield cls((0, *chosen, m))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """The last column covered by this decomposition."""
        return self.borders[-1]

    @property
    def partitions(self) -> tuple[tuple[int, int], ...]:
        """The ``(i, j)`` column ranges of the partitions, in order."""
        return tuple(zip(self.borders, self.borders[1:]))

    @property
    def is_binary(self) -> bool:
        return all(j - i == 1 for i, j in self.partitions)

    @property
    def is_trivial(self) -> bool:
        return len(self.borders) == 2

    def partition_containing(self, column: int) -> tuple[int, int]:
        """The partition ``(i, j)`` with ``i <= column <= j`` (leftmost if on a border)."""
        if not 0 <= column <= self.m:
            raise DecompositionError(f"column {column} outside 0..{self.m}")
        for i, j in self.partitions:
            if i <= column <= j:
                return (i, j)
        raise AssertionError("unreachable: borders cover 0..m")

    def validate_for(self, m: int) -> None:
        """Check this decomposition fits an ``(m+1)``-column relation."""
        if self.m != m:
            raise DecompositionError(
                f"decomposition {self.borders} ends at {self.m}, relation "
                f"has last column {m}"
            )

    def __str__(self) -> str:
        return "(" + ", ".join(map(str, self.borders)) + ")"

    # ------------------------------------------------------------------
    # materialization + losslessness
    # ------------------------------------------------------------------

    def materialize(self, relation: Relation) -> list[Relation]:
        """Project ``relation`` onto each partition's columns."""
        self.validate_for(relation.arity - 1)
        return [relation.slice(i, j) for i, j in self.partitions]

    def recompose(
        self, partitions: Sequence[Relation], extension: Extension
    ) -> Relation:
        """Join partitions back together (the losslessness direction).

        The join kind matches the extension that was decomposed: partial
        paths are NULL-padded at partition borders, so canonical needs the
        natural join and the partial-path extensions need the matching
        outer joins to resurrect rows whose border cell is NULL.
        """
        if len(partitions) != len(self.partitions):
            raise DecompositionError(
                f"expected {len(self.partitions)} partitions, got {len(partitions)}"
            )
        if extension is Extension.RIGHT:
            return fold_join_right(list(partitions), JoinKind.RIGHT_OUTER)
        return fold_join(list(partitions), extension.join_kind)
