"""Incremental maintenance of access support relations (section 6).

The paper analyzes the cost of keeping ASRs consistent under object-base
updates; this module supplies the *algorithm*: translate every change
event into a set of **dirty anchors** — ``(type index, cell)`` pairs whose
surrounding paths may have changed — then

1. select the currently stored extension rows passing through any anchor
   (or containing a deleted OID) — the *old* neighbourhood;
2. recompute, from the post-update object graph, all extension rows
   passing through each live anchor (``rows_through``: backward-maximal ×
   forward-maximal path segments, filtered by the extension's rules) —
   the *new* neighbourhood;
3. apply ``added = new − old`` and ``removed = old − new``.

Because the new neighbourhood is recomputed from the real graph rather
than composed from deltas, the procedure is exact for every extension,
including the paper's tricky cases: empty-set stub rows appearing and
disappearing, partial paths becoming complete, shared sets, and even
paths in which the same ``(type, attribute)`` occurs at several positions
(which the paper's section 6 explicitly assumes away).  Exactness is
property-tested against full rebuilds.

The *cost* of maintenance is a separate concern, modelled analytically in
:mod:`repro.costmodel.updatecost`; here the object-graph searches mirror
the ``I_l`` / ``I_r`` materialization of section 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.asr.extensions import Extension
from repro.gom.database import ObjectBase
from repro.gom.events import (
    AttributeSet,
    Event,
    ObjectCreated,
    ObjectDeleted,
    SetInserted,
    SetRemoved,
)
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.gom.traversal import backward_rows, forward_rows
from repro.gom.types import NULL


@dataclass(frozen=True)
class DirtyRegion:
    """What an event touched, relative to one path expression.

    ``anchors`` are ``(type index, cell)`` pairs: every extension row that
    changed passes through at least one anchor (at the column of that type
    index) or contains one of ``dead`` (OIDs that ceased to exist).
    """

    anchors: frozenset[tuple[int, Cell]]
    dead: frozenset[OID] = frozenset()

    def __bool__(self) -> bool:
        return bool(self.anchors) or bool(self.dead)


EMPTY_REGION = DirtyRegion(frozenset())


def merge_regions(*regions: DirtyRegion) -> DirtyRegion:
    """Coalesce dirty regions: the union of anchors and dead OIDs.

    This is what makes batched maintenance cheap *and* exact: every row
    changed by any of the underlying events passes through at least one
    anchor of (or contains a dead OID of) the merged region, so one
    :func:`neighbourhood_delta` against the final object graph replaces
    one delta per event — overlapping neighbourhoods are recomputed and
    their tree pages touched once instead of once per event.
    """
    anchors: frozenset[tuple[int, Cell]] = frozenset()
    dead: frozenset[OID] = frozenset()
    for region in regions:
        anchors |= region.anchors
        dead |= region.dead
    if not anchors and not dead:
        return EMPTY_REGION
    return DirtyRegion(anchors, dead)


def analyze_event(db: ObjectBase, path: PathExpression, event: Event) -> DirtyRegion:
    """The dirty region of ``event`` w.r.t. ``path`` (empty if unaffected)."""
    if isinstance(event, ObjectCreated):
        return EMPTY_REGION
    if isinstance(event, AttributeSet):
        return _analyze_attribute_set(db, path, event)
    if isinstance(event, (SetInserted, SetRemoved)):
        return _analyze_membership(db, path, event)
    if isinstance(event, ObjectDeleted):
        return _analyze_deletion(db, path, event)
    return EMPTY_REGION


def _matching_steps_for_attribute(
    db: ObjectBase, path: PathExpression, type_name: str, attribute: str
) -> list[int]:
    """1-based step indices ``s`` whose ``A_s`` the event's attribute is."""
    return [
        s
        for s, step in enumerate(path.steps, start=1)
        if step.attribute == attribute
        and db.schema.is_subtype(type_name, step.domain_type)
    ]


def _analyze_attribute_set(
    db: ObjectBase, path: PathExpression, event: AttributeSet
) -> DirtyRegion:
    anchors: set[tuple[int, Cell]] = set()
    for s in _matching_steps_for_attribute(db, path, event.type_name, event.attribute):
        step = path.steps[s - 1]
        anchors.add((s - 1, event.oid))
        if step.is_set_occurrence:
            # old/new are collection OIDs; the path-level neighbours are
            # their members (the collections themselves sit on the extra
            # column between owner and member and are covered by the
            # owner anchor).
            for collection in (event.old_value, event.new_value):
                if isinstance(collection, OID) and collection in db:
                    for member in db.members(collection):
                        anchors.add((s, member))
        else:
            for cell in (event.old_value, event.new_value):
                if cell is not NULL:
                    anchors.add((s, cell))
    return DirtyRegion(frozenset(anchors))


def _analyze_membership(
    db: ObjectBase, path: PathExpression, event: SetInserted | SetRemoved
) -> DirtyRegion:
    anchors: set[tuple[int, Cell]] = set()
    for s, step in enumerate(path.steps, start=1):
        if step.collection_type != event.set_type:
            continue
        if event.element is not NULL:
            anchors.add((s, event.element))
        for owner in _owners_via(db, step.domain_type, step.attribute, event.set_oid):
            anchors.add((s - 1, owner))
    return DirtyRegion(frozenset(anchors))


def _owners_via(
    db: ObjectBase, domain_type: str, attribute: str, collection: OID
) -> list[OID]:
    return [
        oid
        for oid in db.referrers(collection)
        if db.schema.is_subtype(db.type_of(oid), domain_type)
        and attribute in db.schema.attributes_of(db.type_of(oid))
        and db.attr(oid, attribute) == collection
    ]


def _analyze_deletion(
    db: ObjectBase, path: PathExpression, event: ObjectDeleted
) -> DirtyRegion:
    anchors: set[tuple[int, Cell]] = set()
    dead: set[OID] = set()
    for i, type_name in enumerate(path.types):
        if db.schema.is_subtype(event.type_name, type_name):
            dead.add(event.oid)
    for s, step in enumerate(path.steps, start=1):
        # Collection OIDs occupy their own column: a deleted collection
        # must be purged too.
        if step.collection_type is not None and event.type_name == step.collection_type:
            dead.add(event.oid)
            if isinstance(event.old_value, (set, frozenset, list, tuple)):
                for member in event.old_value:
                    if member is not NULL:
                        anchors.add((s, member))
        # Targets of the deleted object's outgoing edges may become
        # left-maximal stubs.
        if isinstance(event.old_value, dict) and db.schema.is_subtype(
            event.type_name, step.domain_type
        ):
            target = event.old_value.get(step.attribute, NULL)
            if target is NULL:
                continue
            if step.is_set_occurrence:
                if isinstance(target, OID) and target in db:
                    for member in db.members(target):
                        anchors.add((s, member))
            else:
                anchors.add((s, target))
    if not dead and not anchors:
        return EMPTY_REGION
    return DirtyRegion(frozenset(anchors), frozenset(dead))


# ----------------------------------------------------------------------
# neighbourhood recomputation
# ----------------------------------------------------------------------


def rows_through(
    db: ObjectBase,
    path: PathExpression,
    i: int,
    cell: Cell,
    extension: Extension,
) -> set[tuple[Cell, ...]]:
    """All extension rows passing through ``cell`` at type index ``i``.

    Combines every backward-maximal partial path ending at ``cell`` with
    every forward-maximal partial path starting there, then filters by the
    extension's rules (canonical: complete; left: originates in ``t_0``;
    right: reaches ``t_n``).
    """
    if cell is NULL:
        return set()
    if isinstance(cell, OID) and cell not in db:
        return set()
    backs = backward_rows(db, path, i, cell)
    fores = forward_rows(db, path, i, cell)
    rows = {back + fore[1:] for back in backs for fore in fores}
    # Every extension row embeds at least one auxiliary-relation tuple
    # (an edge, or an owner/empty-set pair), i.e. at least two non-NULL
    # cells; an isolated cell — e.g. an atomic value no object carries
    # any more — is not a path segment.
    rows = {
        row
        for row in rows
        if sum(1 for value in row if value is not NULL) >= 2
    }
    return {row for row in rows if _admissible(row, extension)}


def _admissible(row: tuple[Cell, ...], extension: Extension) -> bool:
    if extension is Extension.CANONICAL:
        return all(cell is not NULL for cell in row)
    if extension is Extension.LEFT:
        return row[0] is not NULL
    if extension is Extension.RIGHT:
        return row[-1] is not NULL
    return True


def neighbourhood_delta(
    db: ObjectBase,
    path: PathExpression,
    extension: Extension,
    current_rows: Iterable[tuple[Cell, ...]],
    region: DirtyRegion,
) -> tuple[set[tuple[Cell, ...]], set[tuple[Cell, ...]]]:
    """The ``(added, removed)`` extension rows induced by ``region``."""
    if not region:
        return set(), set()
    anchor_columns: list[tuple[int, Cell]] = [
        (path.column_of(i), cell) for i, cell in region.anchors
    ]
    dead = region.dead

    def touches(row: tuple[Cell, ...]) -> bool:
        if dead and any(cell in dead for cell in row if isinstance(cell, OID)):
            return True
        return any(row[column] == cell for column, cell in anchor_columns)

    old_rows = {row for row in current_rows if touches(row)}
    new_rows: set[tuple[Cell, ...]] = set()
    for i, cell in region.anchors:
        new_rows |= rows_through(db, path, i, cell, extension)
    # A recomputed row may still contain a dead OID at a *different*
    # column only if the object base itself were inconsistent; guard
    # anyway so deletions can never resurrect rows.
    if dead:
        new_rows = {
            row
            for row in new_rows
            if not any(cell in dead for cell in row if isinstance(cell, OID))
        }
    return new_rows - old_rows, old_rows - new_rows
