"""Stored access support relations (sections 3 and 5.2).

An :class:`AccessSupportRelation` materializes one extension of the ASR
for a path expression, split according to a decomposition.  Each
partition is kept in **two redundant B+ trees** (following Valduriez's
join indices, section 5.2): one clustered on the partition's *first*
column — serving forward lookups — and one on its *last* column — serving
backward lookups.

Partition contents are *projections* of the undecomposed extension, so a
single partition row can be witnessed by several extension rows; the
partition therefore reference-counts its rows and physically inserts or
deletes tree entries only on the 0↔1 transitions.  This is what makes
incremental maintenance (:mod:`repro.asr.maintenance`) exact.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence

from repro.asr.decomposition import Decomposition
from repro.asr.extensions import Extension, build_extension
from repro.asr.journal import ASRState
from repro.asr.relation import Relation
from repro.context import resolve_buffer
from repro.errors import RelationError, StorageError
from repro.gom.database import ObjectBase
from repro.gom.objects import OID, Cell
from repro.gom.paths import PathExpression
from repro.gom.types import NULL
from repro.storage.btree import BPlusTree
from repro.storage.pages import (
    DEFAULT_OID_SIZE,
    DEFAULT_PAGE_SIZE,
    btree_fanout,
    tuples_per_page,
)


class _KeyBound:
    """A sentinel sorting below (``BOTTOM``) or above (``TOP``) every cell.

    Real cells occupy ranks 0–4 of :func:`cell_key`; the bounds sit at
    ranks -1 and 5 so half-open scans can be made one-sided without
    inventing a fake "largest" value of any particular type.  They are
    valid *bounds* only — they never appear inside stored rows.
    """

    __slots__ = ("_name", "_key")

    def __init__(self, name: str, rank: int) -> None:
        self._name = name
        self._key = (rank, 0)

    @property
    def key(self) -> tuple:
        return self._key

    def __repr__(self) -> str:
        return self._name


BOTTOM = _KeyBound("BOTTOM", -1)
TOP = _KeyBound("TOP", 5)


def cell_key(cell: Cell) -> tuple:
    """A total order over cells: NULL < OIDs < booleans < numbers < strings.

    The pseudo-cells :data:`BOTTOM` and :data:`TOP` compare below and
    above everything else, for use as open range-scan endpoints.
    """
    if isinstance(cell, _KeyBound):
        return cell.key
    if cell is NULL:
        return (0, 0)
    if isinstance(cell, OID):
        return (1, cell.value)
    if isinstance(cell, bool):
        return (2, int(cell))
    if isinstance(cell, (int, float)):
        return (3, float(cell))
    return (4, str(cell))


def row_key(row: Sequence[Cell]) -> tuple:
    """A total order over whole rows (the unique tie-break for tree keys)."""
    return tuple(cell_key(cell) for cell in row)


class StoredPartition:
    """One partition ``E^{i,j}_X`` with its two clustered B+ trees.

    ``first_column``/``last_column`` are the partition's borders in the
    *undecomposed* relation's column numbering (Definition 3.8).
    """

    def __init__(
        self,
        first_column: int,
        last_column: int,
        labels: Sequence[str],
        page_size: int = DEFAULT_PAGE_SIZE,
        oid_size: int = DEFAULT_OID_SIZE,
    ) -> None:
        if last_column <= first_column:
            raise StorageError("a partition spans at least two columns")
        self.first_column = first_column
        self.last_column = last_column
        self.labels = tuple(labels)
        self.page_size = page_size
        self.oid_size = oid_size
        self.tuples_per_page = tuples_per_page(
            first_column, last_column, page_size, oid_size
        )
        self._fanout = btree_fanout(page_size=page_size, oid_size=oid_size)
        self._counts: Counter[tuple[Cell, ...]] = Counter()
        self.forward_tree = BPlusTree(self.tuples_per_page, self._fanout)
        self.backward_tree = BPlusTree(self.tuples_per_page, self._fanout)
        #: True when this partition is physically shared between several
        #: access support relations (section 5.4); reference counts then
        #: aggregate witnesses from *all* sharers.
        self.shared = False

    # ------------------------------------------------------------------
    # geometry / statistics
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        return self.last_column - self.first_column + 1

    @property
    def tuple_count(self) -> int:
        """``#E^{i,j}_X`` — distinct rows stored."""
        return len(self._counts)

    @property
    def byte_size(self) -> int:
        """``as^{i,j}_X`` (Eq. 15)."""
        return self.tuple_count * self.arity * self.oid_size

    @property
    def page_count(self) -> int:
        """``ap^{i,j}_X`` (Eq. 16) — data (leaf) pages of one clustering."""
        return self.forward_tree.leaf_count() if self.tuple_count else 0

    def rows(self) -> Iterator[tuple[Cell, ...]]:
        return iter(self._counts)

    def as_relation(self) -> Relation:
        return Relation(self.labels, self._counts.keys())

    # ------------------------------------------------------------------
    # loading and delta application
    # ------------------------------------------------------------------

    def project(self, extension_row: tuple[Cell, ...]) -> tuple[Cell, ...] | None:
        """This partition's slice of an extension row (None if all NULL)."""
        projected = extension_row[self.first_column : self.last_column + 1]
        if all(cell is NULL for cell in projected):
            return None
        return projected

    def bulk_load(self, rows: Iterable[tuple[Cell, ...]]) -> None:
        """Replace the contents with ``rows`` (each counted once)."""
        self._counts = Counter()
        for row in rows:
            if len(row) != self.arity:
                raise RelationError(
                    f"partition row arity {len(row)} != {self.arity}"
                )
            self._counts[tuple(row)] += 1
        forward_entries = sorted(
            ((cell_key(row[0]), row_key(row)), row) for row in self._counts
        )
        backward_entries = sorted(
            ((cell_key(row[-1]), row_key(row)), row) for row in self._counts
        )
        self.forward_tree = BPlusTree.bulk_load(
            forward_entries, self.tuples_per_page, self._fanout
        )
        self.backward_tree = BPlusTree.bulk_load(
            backward_entries, self.tuples_per_page, self._fanout
        )

    def load_from_extension(self, extension_rows: Iterable[tuple[Cell, ...]]) -> None:
        """Project and reference-count full extension rows, then bulk load."""
        counts: Counter[tuple[Cell, ...]] = Counter()
        for extension_row in extension_rows:
            projected = self.project(extension_row)
            if projected is not None:
                counts[projected] += 1
        self._counts = counts
        forward_entries = sorted(
            ((cell_key(row[0]), row_key(row)), row) for row in counts
        )
        backward_entries = sorted(
            ((cell_key(row[-1]), row_key(row)), row) for row in counts
        )
        self.forward_tree = BPlusTree.bulk_load(
            forward_entries, self.tuples_per_page, self._fanout
        )
        self.backward_tree = BPlusTree.bulk_load(
            backward_entries, self.tuples_per_page, self._fanout
        )

    def add_projection(self, row: tuple[Cell, ...], context=None, *, buffer=None) -> None:
        """Reference one witness of ``row``; insert trees on 0→1."""
        buffer = resolve_buffer(context, buffer)
        row = tuple(row)
        self._counts[row] += 1
        if self._counts[row] == 1:
            self.forward_tree.insert((cell_key(row[0]), row_key(row)), row, buffer)
            self.backward_tree.insert((cell_key(row[-1]), row_key(row)), row, buffer)

    def remove_projection(self, row: tuple[Cell, ...], context=None, *, buffer=None) -> None:
        """Drop one witness of ``row``; delete from trees on 1→0."""
        buffer = resolve_buffer(context, buffer)
        row = tuple(row)
        count = self._counts.get(row, 0)
        if count == 0:
            raise RelationError(f"row {row!r} not present in partition")
        if count == 1:
            del self._counts[row]
            self.forward_tree.delete((cell_key(row[0]), row_key(row)), buffer)
            self.backward_tree.delete((cell_key(row[-1]), row_key(row)), buffer)
        else:
            self._counts[row] = count - 1

    # ------------------------------------------------------------------
    # charged access paths
    # ------------------------------------------------------------------

    def lookup_forward(self, cell: Cell, context=None, *, buffer=None) -> list[tuple[Cell, ...]]:
        """All rows whose first column equals ``cell`` (forward clustering)."""
        return self._prefix_scan(self.forward_tree, cell, resolve_buffer(context, buffer))

    def lookup_backward(self, cell: Cell, context=None, *, buffer=None) -> list[tuple[Cell, ...]]:
        """All rows whose last column equals ``cell`` (backward clustering)."""
        return self._prefix_scan(self.backward_tree, cell, resolve_buffer(context, buffer))

    def lookup_backward_range(
        self, lo: Cell, hi: Cell, context=None, *, buffer=None
    ) -> list[tuple[Cell, ...]]:
        """Rows whose last column lies in ``[lo, hi)`` (value clustering).

        The backward tree is clustered on the partition's last column, so
        when a path terminates in an atomic type this is a genuine index
        range scan over the values — e.g. all paths reaching a ``Price``
        between two bounds.
        """
        results = []
        for _key, value in self.backward_tree.range(
            lo=(cell_key(lo), ()),
            hi=(cell_key(hi), ()),
            context=resolve_buffer(context, buffer),
        ):
            results.append(value)
        return results

    @staticmethod
    def _prefix_scan(tree: BPlusTree, cell: Cell, buffer) -> list[tuple[Cell, ...]]:
        prefix = cell_key(cell)
        results = []
        for key, value in tree.range(lo=(prefix, ()), context=buffer):
            if key[0] != prefix:
                break
            results.append(value)
        return results

    def scan(self, context=None, *, buffer=None) -> list[tuple[Cell, ...]]:
        """Read every row, charging all data pages (exhaustive inspection)."""
        buffer = resolve_buffer(context, buffer)
        return [value for _, value in self.forward_tree.range(context=buffer)]


class AccessSupportRelation:
    """A materialized, decomposed access support relation.

    Construction from a live object base::

        asr = AccessSupportRelation.build(
            db, path, Extension.FULL, Decomposition.binary(path.m))

    The undecomposed extension is kept as the logical source of truth
    (``self.extension_relation``); each partition stores its projection
    with reference counts, in two clustered B+ trees.
    """

    def __init__(
        self,
        path: PathExpression,
        extension: Extension,
        decomposition: Decomposition | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        oid_size: int = DEFAULT_OID_SIZE,
    ) -> None:
        self.path = path
        self.extension = extension
        self.decomposition = decomposition or Decomposition.none(path.m)
        self.decomposition.validate_for(path.m)
        self.page_size = page_size
        self.oid_size = oid_size
        #: Crash-consistency state (see :mod:`repro.asr.journal`); the
        #: managing :class:`~repro.asr.manager.ASRManager` drives the
        #: transitions, query layers only read it.
        self.state = ASRState.CONSISTENT
        labels = path.column_labels()
        self.extension_relation = Relation(labels)
        self.partitions: list[StoredPartition] = [
            StoredPartition(i, j, labels[i : j + 1], page_size, oid_size)
            for i, j in self.decomposition.partitions
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        db: ObjectBase,
        path: PathExpression,
        extension: Extension,
        decomposition: Decomposition | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        oid_size: int = DEFAULT_OID_SIZE,
        workers: int | None = None,
    ) -> "AccessSupportRelation":
        """Materialize the ASR for ``path`` from the object base.

        ``workers`` (> 1) parallelizes the bulk build: the auxiliary
        scans are partitioned across a thread pool and the decomposition
        partitions are bulk-loaded concurrently.  The result is
        identical to the sequential build (see :mod:`repro.asr.auxiliary`).
        """
        asr = cls(path, extension, decomposition, page_size, oid_size)
        asr.rebuild(db, workers=workers)
        return asr

    def rebuild(self, db: ObjectBase, workers: int | None = None) -> None:
        """Recompute the extension from scratch and reload every partition.

        A rebuild restores consistency unconditionally, so it also lifts
        any quarantine.  ``workers`` parallelizes the auxiliary scans and
        the per-partition bulk loads (each partition owns its trees, so
        the loads are independent).
        """
        self.extension_relation = build_extension(
            db, self.path, self.extension, workers=workers
        )
        rows = self.extension_relation.rows
        if workers is not None and workers > 1 and len(self.partitions) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=min(workers, len(self.partitions))
            ) as executor:
                list(
                    executor.map(
                        lambda partition: partition.load_from_extension(rows),
                        self.partitions,
                    )
                )
        else:
            for partition in self.partitions:
                partition.load_from_extension(rows)
        self.state = ASRState.CONSISTENT

    # ------------------------------------------------------------------
    # delta application (used by repro.asr.maintenance)
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        added: Iterable[tuple[Cell, ...]],
        removed: Iterable[tuple[Cell, ...]],
        context=None,
        *,
        buffer=None,
    ) -> None:
        """Apply extension-level row deltas to the logical relation and trees."""
        buffer = resolve_buffer(context, buffer)
        for row in removed:
            row = tuple(row)
            if row not in self.extension_relation:
                continue
            self.extension_relation.discard(row)
            for partition in self.partitions:
                projected = partition.project(row)
                if projected is not None:
                    partition.remove_projection(projected, buffer)
        for row in added:
            row = tuple(row)
            if row in self.extension_relation:
                continue
            self.extension_relation.add(row)
            for partition in self.partitions:
                projected = partition.project(row)
                if projected is not None:
                    partition.add_projection(projected, buffer)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def quarantined(self) -> bool:
        """True while crash recovery is pending: trees may be torn and
        queries must fall back instead of reading them."""
        return self.state is ASRState.QUARANTINED

    @property
    def tuple_count(self) -> int:
        """Rows of the undecomposed extension."""
        return len(self.extension_relation)

    @property
    def total_bytes(self) -> int:
        """Σ over partitions of ``as^{i,j}`` (non-redundant representation)."""
        return sum(partition.byte_size for partition in self.partitions)

    @property
    def total_pages(self) -> int:
        """Σ over partitions of ``ap^{i,j}`` (one clustering)."""
        return sum(partition.page_count for partition in self.partitions)

    def partition_at(self, first_column: int) -> StoredPartition:
        """The partition whose left border is ``first_column``."""
        for partition in self.partitions:
            if partition.first_column == first_column:
                return partition
        raise StorageError(f"no partition starts at column {first_column}")

    def partition_covering(self, column: int) -> StoredPartition:
        """The partition containing ``column`` (leftmost when on a border)."""
        i, _ = self.decomposition.partition_containing(column)
        return self.partition_at(i)

    def supports_query(self, i: int, j: int) -> bool:
        """Eq. 35: can this ASR evaluate ``Q_{i,j}`` at all?"""
        return self.extension.supports_query(i, j, self.path.n)

    def consistency_check(self, db: ObjectBase) -> None:
        """Assert the stored state matches a from-scratch rebuild (tests)."""
        expected = build_extension(db, self.path, self.extension)
        actual = self.extension_relation
        missing = expected.rows - actual.rows
        spurious = actual.rows - expected.rows
        assert not missing and not spurious, (
            f"ASR drifted from object base: missing={sorted(missing, key=row_key)[:5]} "
            f"spurious={sorted(spurious, key=row_key)[:5]}"
        )
        for partition in self.partitions:
            expected_counts: Counter = Counter()
            for row in expected.rows:
                projected = partition.project(row)
                if projected is not None:
                    expected_counts[projected] += 1
            if partition.shared:
                # Shared partitions aggregate witnesses from all sharers:
                # this ASR's projections must be present, with at least
                # this ASR's witness counts.
                for row, count in expected_counts.items():
                    assert partition._counts.get(row, 0) >= count, (
                        "shared partition lost rows of this ASR"
                    )
                stored = {value for _, value in partition.forward_tree.items()}
                assert set(expected_counts) <= stored, "shared forward tree drifted"
                continue
            assert expected_counts == partition._counts, (
                f"partition ({partition.first_column},{partition.last_column}) "
                "reference counts drifted"
            )
            tree_rows = {value for _, value in partition.forward_tree.items()}
            assert tree_rows == set(expected_counts), "forward tree drifted"
            tree_rows = {value for _, value in partition.backward_tree.items()}
            assert tree_rows == set(expected_counts), "backward tree drifted"

    def __repr__(self) -> str:
        flag = "" if self.state is ASRState.CONSISTENT else f", {self.state.value}"
        return (
            f"AccessSupportRelation({self.path}, {self.extension.value}, "
            f"dec={self.decomposition}, rows={self.tuple_count}{flag})"
        )
