"""Simulated device model: page accesses priced as device latency.

The paper's cost measure is *page accesses* — its evaluation never
touches wall clock.  The serving layers on top of the reproduction need
a wall-clock dimension, and the natural seam is exactly the one the
cost model defines: every charged page costs one simulated device
round-trip.  Until this module existed the serve driver priced that
inline (``time.sleep(pages * io_seconds)`` buried in the drive loop),
which hard-wired two decisions at once: the latency *distribution*
(fixed per page) and the waiting *mechanism* (a blocked worker thread).

:class:`DeviceModel` makes both pluggable:

* **distribution** — a :class:`LatencyModel` maps a page count to
  simulated seconds.  :class:`FixedLatency` is the historical behaviour
  (``pages * io_micros``); :class:`LognormalLatency` draws per-operation
  multiplicative jitter from a seeded lognormal (the long right tail of
  real devices); the :data:`DEVICE_CLASSES` presets (``nvme`` / ``ssd``
  / ``disk``) bundle a realistic median and spread per device class.
* **mechanism** — :meth:`DeviceModel.charge` blocks the calling thread
  (the threaded serve mode), while :meth:`DeviceModel.acharge` awaits
  ``asyncio.sleep`` so thousands of in-flight operations can wait on
  one event loop without burning a thread each (the async serve mode).

Both entry points price the *same* seconds for the same pages, so the
threaded-vs-async benchmark comparison isolates the concurrency
mechanism from the latency model.  Charges are published into an
optional :class:`~repro.telemetry.registry.MetricsRegistry` as the
``device.charge_ms`` histogram and ``device.pages`` counter.

``--io-dist`` specs accepted by :func:`parse_io_dist`:

``fixed``
    :class:`FixedLatency` at ``io_micros`` per page (the default).
``lognormal`` or ``lognormal:SIGMA``
    :class:`LognormalLatency` with median ``io_micros`` per page and
    shape ``SIGMA`` (default 0.5).
``nvme`` / ``ssd`` / ``disk``
    A :data:`DEVICE_CLASSES` preset — lognormal with the class's median
    microseconds and spread; ``--io-micros`` is ignored.
"""

from __future__ import annotations

import asyncio
import math
import random
import threading
import time
from dataclasses import dataclass

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "LognormalLatency",
    "DEVICE_CLASSES",
    "DeviceModel",
    "parse_io_dist",
]


class LatencyModel:
    """Maps charged page counts to simulated device seconds."""

    def seconds(self, pages: int) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-able description (embedded in benchmark reports)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Every charged page costs exactly ``io_micros`` microseconds."""

    io_micros: float = 150.0

    def seconds(self, pages: int) -> float:
        return pages * self.io_micros / 1e6

    def describe(self) -> dict:
        return {"dist": "fixed", "io_micros": self.io_micros}


class LognormalLatency(LatencyModel):
    """Per-operation multiplicative jitter around a median page latency.

    One lognormal factor is drawn per :meth:`seconds` call (per
    *operation*, not per page — a single device request covers the
    operation's pages back to back), with median 1 so the median
    per-page latency stays ``io_micros``.  The RNG is seeded and
    lock-protected: identical seeds replay identical latency sequences
    for identical call sequences, from any number of threads.
    """

    def __init__(
        self, io_micros: float = 150.0, sigma: float = 0.5, seed: int = 0
    ) -> None:
        if io_micros < 0:
            raise ValueError(f"io_micros must be >= 0, got {io_micros}")
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.io_micros = io_micros
        self.sigma = sigma
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def seconds(self, pages: int) -> float:
        if not pages or not self.io_micros:
            return 0.0
        with self._lock:
            factor = self._rng.lognormvariate(0.0, self.sigma)
        return pages * self.io_micros / 1e6 * factor

    def describe(self) -> dict:
        return {
            "dist": "lognormal",
            "io_micros": self.io_micros,
            "sigma": self.sigma,
            "seed": self.seed,
        }


#: Device-class presets: class name -> (median io_micros per page, sigma).
#: Rough 2020s-hardware shapes — an NVMe read is tens of microseconds and
#: tight, a spinning disk is milliseconds with a long seek tail.
DEVICE_CLASSES = {
    "nvme": (20.0, 0.25),
    "ssd": (150.0, 0.35),
    "disk": (4000.0, 0.6),
}


def parse_io_dist(spec: str, io_micros: float, seed: int = 0) -> LatencyModel:
    """Build the :class:`LatencyModel` an ``--io-dist`` spec describes.

    Raises :class:`ValueError` on an unknown spec (see the module
    docstring for the accepted forms).
    """
    spec = spec.strip().lower()
    if spec == "fixed":
        return FixedLatency(io_micros)
    if spec in DEVICE_CLASSES:
        median, sigma = DEVICE_CLASSES[spec]
        return LognormalLatency(median, sigma, seed)
    if spec == "lognormal" or spec.startswith("lognormal:"):
        sigma = 0.5
        if ":" in spec:
            _, _, tail = spec.partition(":")
            try:
                sigma = float(tail)
            except ValueError:
                raise ValueError(
                    f"bad lognormal sigma {tail!r} in io-dist spec {spec!r}"
                ) from None
        return LognormalLatency(io_micros, sigma, seed)
    raise ValueError(
        f"unknown io-dist {spec!r}; known: fixed, lognormal[:SIGMA], "
        + ", ".join(sorted(DEVICE_CLASSES))
    )


class DeviceModel:
    """The simulated device the serving layers wait on.

    ``charge(pages)`` blocks the calling thread for the latency model's
    seconds — the threaded serve path, where each client thread *is* an
    in-flight operation.  ``acharge(pages)`` awaits the same seconds on
    the running event loop — the async serve path, where an awaiting
    coroutine costs no thread.  Both return the simulated seconds (0.0
    for zero pages) and publish ``device.charge_ms`` / ``device.pages``
    into ``registry`` when one is attached.
    """

    def __init__(
        self, latency: LatencyModel | None = None, registry=None
    ) -> None:
        self.latency = latency if latency is not None else FixedLatency()
        self.registry = registry

    def seconds(self, pages: int) -> float:
        """The simulated latency of ``pages`` charged accesses."""
        if pages <= 0:
            return 0.0
        seconds = self.latency.seconds(pages)
        if not math.isfinite(seconds) or seconds < 0:
            raise ValueError(
                f"latency model produced {seconds!r} for {pages} page(s)"
            )
        return seconds

    def _observe(self, pages: int, seconds: float) -> None:
        if self.registry is not None and pages > 0:
            self.registry.observe("device.charge_ms", seconds * 1e3)
            self.registry.inc("device.pages", pages)

    def charge(self, pages: int, trace=None) -> float:
        """Sleep the simulated latency on the calling thread.

        ``trace`` (a :class:`~repro.telemetry.tracing.Trace`) records
        the *measured* wait as the ``device`` phase — sleeps overshoot,
        and phase sums must account for real elapsed time.
        """
        seconds = self.seconds(pages)
        start = time.perf_counter() if trace is not None else None
        if seconds:
            time.sleep(seconds)
        if trace is not None:
            trace.add_phase("device", (time.perf_counter() - start) * 1e3)
        self._observe(pages, seconds)
        return seconds

    async def acharge(self, pages: int, trace=None) -> float:
        """Await the simulated latency on the running event loop."""
        seconds = self.seconds(pages)
        start = time.perf_counter() if trace is not None else None
        if seconds:
            await asyncio.sleep(seconds)
        if trace is not None:
            trace.add_phase("device", (time.perf_counter() - start) * 1e3)
        self._observe(pages, seconds)
        return seconds

    def describe(self) -> dict:
        """JSON-able description (embedded in benchmark reports)."""
        return self.latency.describe()
