"""repro — access support relations for object bases.

A complete reproduction of Kemper & Moerkotte, *Access Support in Object
Bases* (SIGMOD 1990): the GOM object model, a page-granular storage
engine, access support relations with four extensions and arbitrary
lossless decompositions, incremental index maintenance, query processing
with and without access support, and the paper's full analytical cost
model with a physical-design advisor.

Most applications need only the re-exports below; see README.md for a
quickstart and DESIGN.md for the architecture.
"""

from repro.errors import (
    CostModelError,
    DecompositionError,
    InjectedFault,
    ObjectBaseError,
    ParseError,
    PathError,
    QueryError,
    RecoveryError,
    RelationError,
    ReproError,
    SchemaError,
    SimulatedCrash,
    StorageError,
    TypingError,
)
from repro.concurrency import ContextPool, RWLock, ThreadLocalContexts
from repro.device import (
    DeviceModel,
    FixedLatency,
    LognormalLatency,
    parse_io_dist,
)
from repro.context import ExecutionContext, Span
from repro.errors import ExitHookError
from repro.faults import FaultInjector
from repro.gom import (
    NULL,
    ObjectBase,
    OID,
    PathExpression,
    Schema,
)
from repro.asr import (
    AccessSupportRelation,
    ASRManager,
    ASRState,
    Decomposition,
    Extension,
    Relation,
    auxiliary_relations,
    build_extension,
)
from repro.query import (
    BackwardQuery,
    ValueRangeQuery,
    ForwardQuery,
    Planner,
    QueryEvaluator,
    SelectExecutor,
    parse_select,
)
from repro.costmodel import (
    ApplicationProfile,
    DesignAdvisor,
    MixCostModel,
    OperationMix,
    QueryCostModel,
    QuerySpec,
    StorageModel,
    SystemParameters,
    UpdateCostModel,
    UpdateSpec,
)
from repro.resilience import (
    BreakerBoard,
    ChaosConfig,
    ChaosController,
    CircuitBreaker,
    HealerLoop,
    RecoveryPolicy,
)
from repro.telemetry import CostModelPredictor, DriftMonitor, MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "TypingError",
    "PathError",
    "ObjectBaseError",
    "RelationError",
    "DecompositionError",
    "StorageError",
    "QueryError",
    "ParseError",
    "CostModelError",
    "InjectedFault",
    "SimulatedCrash",
    "RecoveryError",
    "ExitHookError",
    # execution context / fault injection / concurrency
    "ExecutionContext",
    "Span",
    "FaultInjector",
    "ContextPool",
    "RWLock",
    "ThreadLocalContexts",
    # simulated device
    "DeviceModel",
    "FixedLatency",
    "LognormalLatency",
    "parse_io_dist",
    # object model
    "NULL",
    "OID",
    "Schema",
    "ObjectBase",
    "PathExpression",
    # access support relations
    "Relation",
    "auxiliary_relations",
    "Extension",
    "build_extension",
    "Decomposition",
    "AccessSupportRelation",
    "ASRManager",
    "ASRState",
    # queries
    "ForwardQuery",
    "BackwardQuery",
    "ValueRangeQuery",
    "QueryEvaluator",
    "Planner",
    "SelectExecutor",
    "parse_select",
    # cost model
    "ApplicationProfile",
    "SystemParameters",
    "StorageModel",
    "QueryCostModel",
    "UpdateCostModel",
    "OperationMix",
    "QuerySpec",
    "UpdateSpec",
    "MixCostModel",
    "DesignAdvisor",
    # telemetry
    "MetricsRegistry",
    "DriftMonitor",
    "CostModelPredictor",
    # resilience
    "RecoveryPolicy",
    "CircuitBreaker",
    "BreakerBoard",
    "ChaosConfig",
    "ChaosController",
    "HealerLoop",
]
