"""Per-ASR circuit breakers: route around a relation that keeps faulting.

The planner already degrades to the unsupported GOM traversal while an
ASR is *quarantined* — but a relation that faults, heals, and faults
again flaps between supported and degraded plans on every cycle.  The
breaker adds hysteresis.  Fault evidence (quarantine entries, failed
recovery attempts, evaluation faults) accumulates per ASR; at
``threshold`` consecutive failures the breaker **opens** and the planner
stops considering the ASR even while it is nominally CONSISTENT —
answers keep flowing from the base objects (Litwin's inherited-relation
fallback: the stored relation is an optimisation, never the only source
of truth).  After ``cooldown_s`` the breaker goes **half-open** and
admits exactly one probe query; a successful probe closes it, a failure
re-opens it for another cooldown.

Deliberate asymmetry: routine successful queries through a *closed*
breaker do not reset the failure count — only a half-open probe (or an
explicit :meth:`CircuitBreaker.reset`) clears it.  Under a fault storm
the storm's rhythm (fault, heal, one good query, fault …) would
otherwise keep the count at zero forever; counting only fault evidence
until a deliberate probe succeeds makes "N consecutive faults" mean *N
faults since the breaker last proved the relation stable*.

States are published as the ``breaker.state`` gauge (0 closed, 0.5
half-open, 1 open, labelled by ASR) and every transition bumps
``breaker.transitions`` labelled ``from``/``to``.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker", "BreakerBoard"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the states (monotone in "how broken").
_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 0.5, OPEN: 1.0}


class CircuitBreaker:
    """One resource's closed → open → half-open → closed state machine.

    ``time_fn`` is injectable so property tests drive the clock
    explicitly; production uses :func:`time.monotonic`.
    """

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        registry=None,
        time_fn=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")
        self.name = name
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.registry = registry
        self._time = time_fn
        self._lock = threading.Lock()
        self.state = CLOSED
        self.failures = 0
        self._opened_at: float | None = None
        self._probe_at: float | None = None
        #: ``(from, to) -> count`` — every transition ever taken.
        self.transitions: dict[tuple[str, str], int] = {}
        self._publish_state()

    # -- internals (caller holds self._lock) ---------------------------

    def _publish_state(self) -> None:
        if self.registry is not None:
            self.registry.set_gauge(
                "breaker.state", _STATE_GAUGE[self.state], asr=self.name
            )

    def _transition(self, to: str) -> None:
        if to == self.state:
            return
        key = (self.state, to)
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if self.registry is not None:
            self.registry.inc(
                "breaker.transitions",
                **{"asr": self.name, "from": self.state, "to": to},
            )
        self.state = to
        self._publish_state()

    # -- evidence ------------------------------------------------------

    def record_failure(self) -> None:
        """One fault attributed to this resource."""
        with self._lock:
            if self.state == OPEN:
                return  # already open; the cooldown clock keeps running
            self.failures += 1
            if self.state == HALF_OPEN or self.failures >= self.threshold:
                # A failed probe re-opens immediately; a closed breaker
                # opens once the threshold is met.
                self._opened_at = self._time()
                self._probe_at = None
                self._transition(OPEN)

    def record_success(self) -> None:
        """One *probe* succeeded (meaningful in the half-open state)."""
        with self._lock:
            if self.state == HALF_OPEN:
                self.failures = 0
                self._probe_at = None
                self._transition(CLOSED)
            elif self.state == CLOSED:
                # Explicit clears (e.g. an operator reset) also land
                # here; routine query successes never call this — see
                # the module docstring for why.
                self.failures = 0

    def reset(self) -> None:
        """Force-close (operator override / test convenience)."""
        with self._lock:
            self.failures = 0
            self._probe_at = None
            self._transition(CLOSED)

    # -- admission -----------------------------------------------------

    def allow(self) -> bool:
        """May a request use the resource right now?

        Closed: always.  Open: no, until ``cooldown_s`` elapses — then
        the breaker turns half-open and this call admits the probe.
        Half-open: one probe at a time; an unresolved probe expires
        after another ``cooldown_s`` so a crashed prober cannot wedge
        the breaker half-open forever.
        """
        with self._lock:
            if self.state == CLOSED:
                return True
            now = self._time()
            if self.state == OPEN:
                if self._opened_at is not None and (
                    now - self._opened_at >= self.cooldown_s
                ):
                    self._transition(HALF_OPEN)
                    self._probe_at = now
                    return True
                return False
            # HALF_OPEN: admit one probe per cooldown window.
            if self._probe_at is None or now - self._probe_at >= self.cooldown_s:
                self._probe_at = now
                return True
            return False

    def describe(self) -> dict:
        """JSON-able snapshot for ``/healthz`` and drain reports."""
        with self._lock:
            return {
                "state": self.state,
                "failures": self.failures,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "transitions": {
                    f"{src}->{dst}": count
                    for (src, dst), count in sorted(self.transitions.items())
                },
            }


class BreakerBoard:
    """The daemon's breakers, one per managed ASR, created lazily.

    Keys are ASR identities (ASRs are not hashable by value); display
    names are ``path [extension]``, matching the manager's own naming.
    The board is the glue between three producers of fault evidence —
    the manager's quarantine transitions (via
    :meth:`~repro.asr.manager.ASRManager.add_state_listener`), the
    healer's failed recovery attempts, and the planner's evaluation
    faults — and one consumer, the planner's candidate filter.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 1.0,
        registry=None,
        time_fn=time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.registry = registry
        self._time = time_fn
        self._lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}

    @staticmethod
    def name_of(asr) -> str:
        extension = getattr(asr, "extension", None)
        suffix = getattr(extension, "value", extension)
        return f"{asr.path} [{suffix}]" if suffix is not None else str(asr.path)

    def breaker_for(self, asr) -> CircuitBreaker:
        key = id(asr)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.name_of(asr),
                    threshold=self.threshold,
                    cooldown_s=self.cooldown_s,
                    registry=self.registry,
                    time_fn=self._time,
                )
                self._breakers[key] = breaker
            return breaker

    # -- evidence feeds ------------------------------------------------

    def on_asr_state(self, asr, state: str) -> None:
        """Manager state listener: a quarantine entry is a failure."""
        if state == "quarantined":
            self.breaker_for(asr).record_failure()

    def record_failure(self, asr) -> None:
        self.breaker_for(asr).record_failure()

    def record_success(self, asr) -> None:
        """Planner feedback after a successful supported evaluation.

        Only a half-open *probe* success is forwarded (it closes the
        breaker); routine successes through a closed breaker are not
        evidence — see the module docstring on the asymmetry.
        """
        breaker = self.breaker_for(asr)
        if breaker.state == HALF_OPEN:
            breaker.record_success()

    # -- planner admission --------------------------------------------

    def allow_query(self, asr) -> bool:
        return self.breaker_for(asr).allow()

    # -- inspection ----------------------------------------------------

    def describe(self) -> dict:
        with self._lock:
            breakers = list(self._breakers.values())
        report = {breaker.name: breaker.describe() for breaker in breakers}
        return {
            "threshold": self.threshold,
            "cooldown_s": self.cooldown_s,
            "open": sorted(
                name for name, entry in report.items() if entry["state"] != CLOSED
            ),
            "total_transitions": sum(
                count
                for entry in report.values()
                for count in entry["transitions"].values()
            ),
            "breakers": report,
        }
