"""Live chaos injection: arm the fault injector from the op stream.

:class:`~repro.faults.FaultInjector` has always been deterministic but
*offline* — tests arm a crash point, run one flush, assert the torn
state.  :class:`ChaosController` arms the same named points from the
daemon's live operation stream at a seeded rate, so faults land while
concurrent clients, the healer, and the breakers are all in motion —
production shape, still replayable from the seed.

Strikes arm *named points* (``fault_at``/``crash_at``) rather than
probabilistic page-fault rates on purpose: page-rate faults escape from
arbitrary query evaluation and would kill client loops outright, whereas
named maintenance/recovery points quarantine the ASR through the
journalled pipeline — the failure mode this layer is built to heal.
A struck point stays armed until some operation actually reaches it
(e.g. an update driving ``asr.apply.mid-delta``), which is exactly how
a latent storage fault behaves: armed now, observed at next touch.

Burst "storms": with probability :attr:`ChaosConfig.burst_chance`, a
strike expands into :attr:`ChaosConfig.burst` consecutive strikes — the
back-to-back fault trains that make a healer race its own backoff
ladder.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.faults import KNOWN_CRASH_POINTS, FaultInjector

__all__ = ["ChaosConfig", "ChaosController", "parse_chaos_points"]

#: Default strike targets: tear an apply mid-delta (quarantines the
#: ASR) and trip the first replay of the recovery that follows (makes
#: the healer's retry ladder do real work).
DEFAULT_CHAOS_POINTS = (
    ("asr.apply.mid-delta", "fault"),
    ("asr.recover.replay", "fault"),
)


def parse_chaos_points(spec: str) -> tuple[tuple[str, str], ...]:
    """Parse ``--chaos-crash-points``: ``point[:crash][,point...]``.

    Each entry names a :data:`~repro.faults.KNOWN_CRASH_POINTS` member;
    a ``:crash`` suffix arms :class:`~repro.errors.SimulatedCrash`
    (non-retryable) instead of a transient fault.
    """
    points: list[tuple[str, str]] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        name, _, kind = entry.partition(":")
        kind = kind or "fault"
        if kind not in ("fault", "crash"):
            raise ValueError(
                f"chaos point {entry!r}: suffix must be ':crash', not {kind!r}"
            )
        if name not in KNOWN_CRASH_POINTS:
            raise ValueError(
                f"unknown chaos point {name!r}; known: {list(KNOWN_CRASH_POINTS)}"
            )
        points.append((name, kind))
    if not points:
        raise ValueError("chaos point spec names no points")
    return tuple(points)


@dataclass(frozen=True)
class ChaosConfig:
    """One chaos regime: how often, how hard, and where to strike."""

    #: Per-operation strike probability in ``[0, 1]``; zero disables.
    rate: float = 0.0
    #: Strikes per burst storm (0 disables storms; a burst replaces a
    #: single strike with this many consecutive ones).
    burst: int = 0
    #: Probability that a strike escalates into a burst.
    burst_chance: float = 0.25
    #: ``(point, kind)`` strike targets; kind is ``fault`` or ``crash``.
    points: tuple[tuple[str, str], ...] = field(default=DEFAULT_CHAOS_POINTS)
    #: Seed of the strike RNG (replayable storms).
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("chaos rate must lie in [0, 1]")
        if self.burst < 0:
            raise ValueError("burst must be >= 0")
        if not 0.0 <= self.burst_chance <= 1.0:
            raise ValueError("burst_chance must lie in [0, 1]")
        for _name, kind in self.points:
            if kind not in ("fault", "crash"):
                raise ValueError(f"chaos point kind must be fault|crash, not {kind!r}")

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0 and bool(self.points)


class ChaosController:
    """Strikes the injector as operations flow; thread-safe, seeded."""

    def __init__(
        self,
        injector: FaultInjector,
        config: ChaosConfig | None = None,
        registry=None,
    ) -> None:
        self.injector = injector
        self.config = config or ChaosConfig()
        self.registry = registry
        self._rng = random.Random(self.config.seed)
        self._lock = threading.Lock()
        self._burst_left = 0
        self._stopped = False
        self.strikes = 0
        self.bursts = 0

    def on_operation(self, op=None) -> bool:
        """Consult the chaos policy for one admitted operation.

        Returns True when this operation drew a strike (one named point
        was armed).  Called from client threads and the admission loop;
        the controller's own lock makes the draw-and-arm atomic.
        """
        config = self.config
        if self._stopped or not config.enabled:
            return False
        with self._lock:
            if self._burst_left > 0:
                self._burst_left -= 1
            elif self._rng.random() < config.rate:
                if config.burst > 0 and self._rng.random() < config.burst_chance:
                    self._burst_left = config.burst - 1
                    self.bursts += 1
                    if self.registry is not None:
                        self.registry.inc("chaos.bursts")
            else:
                return False
            point, kind = config.points[self._rng.randrange(len(config.points))]
            if kind == "crash":
                self.injector.crash_at(point)
            else:
                self.injector.fault_at(point, times=1)
            self.strikes += 1
            if self.registry is not None:
                self.registry.inc("chaos.strikes", point=point, kind=kind)
            return True

    def stop(self) -> None:
        """Disarm everything and refuse further strikes (drain step 1)."""
        with self._lock:
            self._stopped = True
            self._burst_left = 0
            self.injector.disarm()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def describe(self) -> dict:
        """JSON-able summary for reports and ``/healthz``."""
        with self._lock:
            return {
                "rate": self.config.rate,
                "burst": self.config.burst,
                "seed": self.config.seed,
                "points": [f"{name}:{kind}" for name, kind in self.config.points],
                "strikes": self.strikes,
                "bursts": self.bursts,
                "stopped": self._stopped,
                "faults_injected": self.injector.faults_injected,
                "crashes_injected": self.injector.crashes_injected,
                "armed_now": list(self.injector.armed_points),
            }
