"""The background healer: quarantined ASRs recover without an operator.

Before this module, a quarantined ASR waited for a human to run ``repro
doctor --repair``.  :class:`HealerLoop` is that human, automated: a
daemon thread sweeps the manager's quarantine set every ``interval``
seconds and drives :meth:`~repro.asr.manager.ASRManager.recover` per
ASR under the shared :class:`~repro.resilience.policy.RecoveryPolicy`.
One thread serves both serving cores — the threaded client pool and the
asyncio core — because recovery is lock-bound CPU work that must not
run on the event loop anyway.

Lock discipline is inherited from ``recover()`` itself: each replay
attempt takes the manager's write lock, backoff sleeps happen with the
lock released, and the healer's own episode pacing (the waits *between*
``recover()`` invocations) runs entirely outside any lock — the healer
never holds the write lock across a sleep.

Per quarantine *episode* (first observation of an ASR in quarantine
until it leaves), the healer makes up to ``policy.episode_attempts``
``recover()`` calls, spaced by ``policy.delay`` with seeded jitter.
Exhausting them marks the episode **given up**: the healer stops
burning retries on it, ``/healthz`` degrades that ASR from "healing"
(200 with detail) to hard-down (503), and ``healer.gave_up`` counts it.
A successful recovery publishes ``healer.recoveries`` and observes the
episode's wall-clock in the ``healer.mttr_ms`` histogram; failures
publish ``healer.failures`` and feed the ASR's circuit breaker.

A :class:`~repro.errors.SimulatedCrash` striking *inside* a recovery
attempt kills that attempt, not the healer: the loop models a
supervisor that restarts its recovery job, so the crash counts as a
failed attempt and the episode ladder continues.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import InjectedFault, RecoveryError, SimulatedCrash
from repro.resilience.policy import RecoveryPolicy

__all__ = ["HealerLoop"]


@dataclass
class _Episode:
    """One ASR's current stay in quarantine, as the healer sees it."""

    name: str
    first_seen: float
    attempts: int = 0
    next_try: float = 0.0
    gave_up: bool = False
    errors: list[str] = field(default_factory=list)


class HealerLoop:
    """Watches ``manager.quarantined`` and drives ``recover()``.

    Parameters are duck-typed so the loop stays importable from
    :mod:`repro.asr.manager`'s dependency (no ``repro.asr`` imports
    here): ``manager`` needs ``quarantined`` and ``recover(asr)``,
    ``breakers`` (optional) needs ``record_failure(asr)``.
    """

    def __init__(
        self,
        manager,
        policy: RecoveryPolicy | None = None,
        interval: float = 0.25,
        registry=None,
        breakers=None,
        seed: int = 0,
        time_fn=time.monotonic,
    ) -> None:
        self.manager = manager
        self.policy = policy or getattr(manager, "policy", None) or RecoveryPolicy()
        self.interval = max(0.005, interval)
        self.registry = registry
        self.breakers = breakers
        self._rng = random.Random(seed)
        self._time = time_fn
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._episodes: dict[int, _Episode] = {}
        self.recoveries = 0
        self.failures = 0
        self.gave_up: list[str] = []
        self._mttr_count = 0
        self._mttr_total_ms = 0.0
        self._mttr_max_ms = 0.0
        if registry is not None:
            registry.gauge_fn("healer.episodes", lambda: len(self._episodes))

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "HealerLoop":
        if self._thread is not None:
            raise RuntimeError("healer already started")
        self._thread = threading.Thread(
            target=self._run, name="asr-healer", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sweep()

    def stop(self, final_sweep: bool = True) -> None:
        """Stop the loop; optionally force one last exhaustive sweep.

        The final sweep ignores episode pacing and give-up marks — at
        drain time (chaos already disarmed) every quarantined ASR gets
        one more unthrottled chance, including the rebuild fallback, so
        the daemon exits consistent whenever consistency is reachable.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if final_sweep:
            self.sweep(force=True)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- the sweep -----------------------------------------------------

    def sweep(self, force: bool = False) -> int:
        """One pass over the quarantine set; returns ASRs recovered.

        ``force`` ignores backoff pacing and give-up marks (the drain
        path).  Safe to call concurrently with the loop — episode state
        is under the healer's own lock, and ``recover()`` brings its
        own write-lock discipline.
        """
        quarantined = list(self.manager.quarantined)
        now = self._time()
        with self._lock:
            # Episodes for ASRs no longer quarantined ended elsewhere
            # (auto-recover, doctor, a concurrent sweep): close them out.
            current = {id(asr) for asr in quarantined}
            for key in list(self._episodes):
                if key not in current:
                    del self._episodes[key]
        recovered = 0
        for asr in quarantined:
            key = id(asr)
            with self._lock:
                episode = self._episodes.get(key)
                if episode is None:
                    episode = _Episode(self._name_of(asr), first_seen=now)
                    self._episodes[key] = episode
                if not force and (episode.gave_up or now < episode.next_try):
                    continue
            try:
                healed = self.manager.recover(asr)
            except (InjectedFault, RecoveryError, SimulatedCrash) as error:
                self._attempt_failed(asr, episode, error, force)
            else:
                if healed:
                    self._attempt_succeeded(episode)
                    recovered += healed
                with self._lock:
                    self._episodes.pop(key, None)
        return recovered

    def _attempt_failed(self, asr, episode: _Episode, error, force: bool) -> None:
        with self._lock:
            episode.attempts += 1
            episode.errors.append(repr(error))
            del episode.errors[:-3]  # keep the newest few
            self.failures += 1
            if not force and episode.attempts >= self.policy.episode_attempts:
                if not episode.gave_up:
                    episode.gave_up = True
                    self.gave_up.append(episode.name)
                    if self.registry is not None:
                        self.registry.inc("healer.gave_up")
            else:
                episode.next_try = self._time() + self.policy.delay(
                    episode.attempts, self._rng
                )
        if self.registry is not None:
            self.registry.inc("healer.failures")
        if self.breakers is not None:
            self.breakers.record_failure(asr)

    def _attempt_succeeded(self, episode: _Episode) -> None:
        mttr_ms = max(0.0, (self._time() - episode.first_seen) * 1e3)
        with self._lock:
            self.recoveries += 1
            self._mttr_count += 1
            self._mttr_total_ms += mttr_ms
            self._mttr_max_ms = max(self._mttr_max_ms, mttr_ms)
            if episode.name in self.gave_up:
                self.gave_up.remove(episode.name)
        if self.registry is not None:
            self.registry.inc("healer.recoveries")
            self.registry.observe("healer.mttr_ms", mttr_ms)

    @staticmethod
    def _name_of(asr) -> str:
        return str(getattr(asr, "path", asr))

    # -- inspection ----------------------------------------------------

    def describe(self) -> dict:
        """JSON-able state for ``/healthz`` and the drain report."""
        with self._lock:
            episodes = list(self._episodes.values())
            mttr = {
                "count": self._mttr_count,
                "mean_ms": round(
                    self._mttr_total_ms / self._mttr_count if self._mttr_count else 0.0,
                    3,
                ),
                "max_ms": round(self._mttr_max_ms, 3),
            }
            return {
                "running": self.running,
                "interval_s": self.interval,
                "recoveries": self.recoveries,
                "failures": self.failures,
                "mttr_ms": mttr,
                "retrying": sorted(e.name for e in episodes if not e.gave_up),
                "gave_up": sorted(e.name for e in episodes if e.gave_up),
                "episodes": [
                    {
                        "asr": e.name,
                        "attempts": e.attempts,
                        "gave_up": e.gave_up,
                        "errors": list(e.errors),
                    }
                    for e in episodes
                ],
            }
