"""The background advisor: the paper's §7 self-tuning loop, live.

Before this module, :class:`~repro.asr.adaptive.AdaptiveDesigner` ran
offline: someone had to record a workload, call ``recommend()``, and
apply the verdict by hand.  :class:`AdvisorLoop` is that someone,
automated — a daemon thread sweeps every ``interval`` seconds, asks the
designer to re-cost the (extension, decomposition) choice against the
*measured* op mix, and, when a different configuration wins by enough
for long enough, re-materializes the ASR online through the designer's
crash-safe retune path (build unlocked, catch up, one atomic swap, one
epoch bump — see ``asr/adaptive.py``).

Decision gates, in order:

* **evidence floor** — fewer than ``min_ops`` recorded operations since
  the last retune rejects the sweep (``insufficient-ops``): the recorder
  must see a representative mix before it is trusted;
* **baseline** — the advisor may conclude *no ASR at all* is cheapest;
  the loop refuses to de-materialize a serving index (``baseline``);
* **hysteresis** — the predicted gain (current cost / best cost,
  optionally calibrated by the :class:`~repro.telemetry.drift.DriftMonitor`'s
  observed-vs-predicted ratio for the *current* design) must clear
  ``threshold`` (``below-threshold``);
* **cooldown** — at most one retune per ``cooldown`` seconds
  (``cooldown``): a mix oscillating around the break-even point must
  not thrash rebuilds;
* **dry-run** — with ``dry_run=True`` the loop records what it *would*
  have done (visible in :meth:`describe` and ``advisor.rejected``
  labelled ``dry-run``) without touching the physical design.

A retune that fails mid-build rolls back by construction — the old ASR
was never dropped — and counts as ``build-failed``; the loop keeps
sweeping.  Metrics: ``advisor.sweeps`` / ``advisor.retunes`` /
``advisor.rejected{reason}`` counters and the ``advisor.predicted_gain``
gauge.  Each applied retune opens an ``advisor.retune`` trace so the
rebuild shows up in ``/trace/recent`` next to the requests it briefly
delayed.

Import discipline: like the healer, this module treats the designer
duck-typed (``recommend()``, ``apply(decision)``, ``recorder``,
``asr``) — nothing here imports from :mod:`repro.asr`.
"""

from __future__ import annotations

import math
import threading
import time

from repro.errors import CostModelError

__all__ = ["AdvisorLoop"]


class AdvisorLoop:
    """Periodically re-evaluates one ASR's physical design and retunes.

    Parameters are duck-typed so the loop stays free of
    :mod:`repro.asr` imports: ``designer`` needs ``recommend()``
    returning a decision with ``current_cost`` / ``best`` / ``retuned``,
    ``apply(decision)``, a ``recorder`` with ``total_operations`` /
    ``reset()``, and an ``asr`` with ``extension.value`` /
    ``decomposition``; ``drift`` (optional) needs ``report()``.
    """

    def __init__(
        self,
        designer,
        interval: float = 5.0,
        threshold: float = 1.2,
        cooldown: float | None = None,
        min_ops: int = 32,
        dry_run: bool = False,
        registry=None,
        tracer=None,
        drift=None,
        time_fn=time.monotonic,
    ) -> None:
        if threshold < 1.0:
            raise ValueError("advisor threshold must be >= 1")
        self.designer = designer
        self.interval = max(0.005, interval)
        self.threshold = threshold
        #: Seconds between applied retunes; defaults to two sweeps so an
        #: oscillating mix cannot thrash rebuilds back to back.
        self.cooldown = 2.0 * self.interval if cooldown is None else cooldown
        self.min_ops = max(1, min_ops)
        self.dry_run = dry_run
        self.registry = registry
        self.tracer = tracer
        self.drift = drift
        self._time = time_fn
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.sweeps = 0
        self.retunes = 0
        self.rejected: dict[str, int] = {}
        self._last_retune: float | None = None
        self._last_decision: dict | None = None
        self._history: list[dict] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "AdvisorLoop":
        if self._thread is not None:
            raise RuntimeError("advisor already started")
        self._thread = threading.Thread(
            target=self._run, name="asr-advisor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - the loop must outlive
                pass  # any single sweep; failures are counted in sweep()

    def stop(self) -> None:
        """Stop the loop.  No final sweep: a drain must not start a
        rebuild it would then have to wait out."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- the sweep -----------------------------------------------------

    def sweep(self, force: bool = False) -> bool:
        """One decision pass; returns True when a retune was applied.

        ``force`` skips the evidence floor and cooldown gates (used by
        tests and the bench soak's convergence probe); the hysteresis
        threshold and the baseline refusal always stand.
        """
        with self._lock:
            self.sweeps += 1
        self._inc("advisor.sweeps")
        recorder = getattr(self.designer, "recorder", None)
        if not force and recorder is not None:
            if recorder.total_operations < self.min_ops:
                return self._reject("insufficient-ops")
        try:
            decision = self.designer.recommend()
        except CostModelError:
            return self._reject("insufficient-ops")
        except Exception:
            return self._reject("recommend-failed")
        gain = self._gain(decision)
        if self.registry is not None:
            self.registry.set_gauge("advisor.predicted_gain", round(gain, 4))
        summary = {
            "decision": decision.describe(),
            "predicted_gain": round(gain, 4),
            "at": self._time(),
        }
        with self._lock:
            self._last_decision = summary
        if decision.best.extension is None:
            # Cheapest is *no* ASR.  De-materializing a serving index is
            # an operator decision, not a background one: refuse.
            return self._reject("baseline")
        if not decision.retuned:
            return self._reject("not-better")
        if gain < self.threshold:
            return self._reject("below-threshold")
        if not force and self._in_cooldown():
            return self._reject("cooldown")
        if self.dry_run:
            with self._lock:
                self._history.append({**summary, "applied": False})
                del self._history[:-8]
            return self._reject("dry-run")
        return self._apply(decision, summary)

    def _apply(self, decision, summary: dict) -> bool:
        before = self._current_design()
        trace = (
            self.tracer.begin("advisor.retune", "advisor")
            if self.tracer is not None
            else None
        )
        if trace is not None:
            trace.annotate(before=before, predicted_gain=summary["predicted_gain"])
        try:
            self.designer.apply(decision)
        except Exception as error:
            # Rollback happened inside the designer: the old ASR was
            # never dropped, so it is still registered and serving.
            if trace is not None:
                trace.annotate(error=repr(error))
                self.tracer.finish(trace, "error")
            return self._reject("build-failed")
        after = self._current_design()
        if trace is not None:
            trace.annotate(after=after)
            self.tracer.finish(trace, "ok")
        recorder = getattr(self.designer, "recorder", None)
        if recorder is not None:
            # The measured mix belonged to the old design's era; the new
            # design earns its next verdict on fresh evidence.
            recorder.reset()
        with self._lock:
            self.retunes += 1
            self._last_retune = self._time()
            self._history.append(
                {**summary, "applied": True, "from": before, "to": after}
            )
            del self._history[:-8]
        self._inc("advisor.retunes")
        return True

    # -- gates ---------------------------------------------------------

    def _gain(self, decision) -> float:
        best_cost = getattr(decision.best, "cost", 0.0)
        if best_cost <= 0.0:
            return math.inf
        return decision.current_cost * self._calibration() / best_cost

    def _calibration(self) -> float:
        """Observed-vs-predicted ratio for the *current* design, if known.

        The drift monitor accumulates ``observed / predicted`` per
        (extension, decomposition, op) key.  Scaling the current cost by
        the current design's ratio compares what the workload actually
        pays against the candidate's raw prediction — the candidate has
        no observations yet, so its side stays uncalibrated.
        """
        if self.drift is None:
            return 1.0
        extension = self._current_design().get("extension")
        try:
            entries = self.drift.report()["by_key"]
        except Exception:
            return 1.0
        log_sum = 0.0
        weight = 0
        for entry in entries:
            if entry.get("extension") != extension:
                continue
            ratio = entry.get("geo_mean_ratio")
            count = entry.get("count", 0)
            if ratio and count and math.isfinite(ratio) and ratio > 0.0:
                log_sum += math.log(ratio) * count
                weight += count
        if not weight:
            return 1.0
        return math.exp(log_sum / weight)

    def _in_cooldown(self) -> bool:
        with self._lock:
            return (
                self._last_retune is not None
                and self._time() - self._last_retune < self.cooldown
            )

    def _reject(self, reason: str) -> bool:
        with self._lock:
            self.rejected[reason] = self.rejected.get(reason, 0) + 1
        self._inc("advisor.rejected", reason=reason)
        return False

    def _inc(self, name: str, **labels: str) -> None:
        if self.registry is not None:
            self.registry.inc(name, 1, **labels)

    def _current_design(self) -> dict:
        asr = getattr(self.designer, "asr", None)
        if asr is None:
            return {}
        extension = getattr(asr, "extension", None)
        return {
            "extension": getattr(extension, "value", str(extension)),
            "decomposition": str(getattr(asr, "decomposition", "")),
        }

    # -- inspection ----------------------------------------------------

    def describe(self) -> dict:
        """JSON-able state for ``GET /advisor`` and the drain report."""
        recorder = getattr(self.designer, "recorder", None)
        with self._lock:
            return {
                "running": self.running,
                "dry_run": self.dry_run,
                "interval_s": self.interval,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown,
                "min_ops": self.min_ops,
                "sweeps": self.sweeps,
                "retunes": self.retunes,
                "rejected": dict(self.rejected),
                "design": self._current_design(),
                "recorded_ops": (
                    recorder.total_operations if recorder is not None else 0
                ),
                "last_decision": self._last_decision,
                "history": list(self._history),
            }
