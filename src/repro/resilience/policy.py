"""The one retry/backoff contract every recovery path shares.

Before this module, each healing path carried its own inline constants:
``ASRManager.recover`` had ``DEFAULT_MAX_RETRIES``/``retry_backoff``
class attributes, ``repro doctor --repair`` reused them implicitly, and
a background healer would have grown a third copy.  A single frozen
:class:`RecoveryPolicy` value is threaded through all three instead, so
"how hard do we try before declaring an ASR dead" is one decision, made
once, visible in one place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How persistently (and how politely) recovery retries.

    Two nested retry ladders share this value.  *Inside* one
    ``recover()`` call, :attr:`max_retries` journal replays run with
    :meth:`delay` sleeps between them, then a full rebuild is the last
    resort (:attr:`rebuild_fallback`).  *Above* that, the
    :class:`~repro.resilience.healer.HealerLoop` re-invokes ``recover()``
    up to :attr:`episode_attempts` times per quarantine episode, spacing
    the invocations by the same :meth:`delay` ladder, before it gives
    up and leaves the ASR for ``/healthz`` to report as hard-down.
    """

    #: Journal-replay attempts inside one ``recover()`` call.
    max_retries: int = 3
    #: Base of the exponential backoff ladder, in seconds.  Zero keeps
    #: the simulator (and the test suite) fast while still counting
    #: attempts.
    backoff_s: float = 0.0
    #: Ladder growth factor: attempt ``k`` waits ``backoff_s *
    #: multiplier**(k-1)`` seconds (before jitter and the cap).
    multiplier: float = 2.0
    #: Fractional jitter: the delay is scaled by a seeded uniform draw
    #: from ``[1 - jitter, 1 + jitter]`` so a fleet of healers does not
    #: retry in lockstep.  Zero disables jitter.
    jitter: float = 0.0
    #: Upper bound on any single delay, in seconds.
    max_delay_s: float = 30.0
    #: Healer-level ``recover()`` invocations per quarantine episode
    #: before the healer gives up on that ASR.
    episode_attempts: int = 5
    #: Whether exhausted replays fall back to a from-scratch rebuild.
    rebuild_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.backoff_s < 0.0:
            raise ValueError("backoff_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if self.max_delay_s < 0.0:
            raise ValueError("max_delay_s must be >= 0")
        if self.episode_attempts < 1:
            raise ValueError("episode_attempts must be >= 1")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """Seconds to wait before retry ``attempt`` (counted from 1).

        Attempt 0 (the first try) never waits.  ``rng`` drives the
        jitter; pass a seeded :class:`random.Random` for replayable
        schedules, or None for the undithered ladder.
        """
        if attempt < 1 or self.backoff_s <= 0.0:
            return 0.0
        delay = self.backoff_s * self.multiplier ** (attempt - 1)
        delay = min(delay, self.max_delay_s)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)
