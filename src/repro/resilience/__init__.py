"""Self-healing resilience layer (DESIGN §13).

The crash-consistency machinery of :mod:`repro.asr` makes faults
*survivable*: a torn delta quarantines its ASR behind an intent journal
and :meth:`~repro.asr.manager.ASRManager.recover` can heal it.  This
package makes faults *routine* — the serving daemon keeps meeting its
SLOs while faults fire, heal, and fire again:

* :class:`~repro.resilience.policy.RecoveryPolicy` — the single
  retry/backoff contract shared by ``ASRManager.recover``, ``repro
  doctor --repair``, and the healer (exponential backoff with seeded
  jitter, attempt caps, rebuild fallback).
* :class:`~repro.resilience.healer.HealerLoop` — a background task
  watching the manager's quarantine set and driving ``recover()`` under
  the policy, publishing ``healer.recoveries`` / ``healer.failures`` /
  ``healer.mttr_ms``.
* :class:`~repro.resilience.chaos.ChaosController` — attaches the
  existing :class:`~repro.faults.FaultInjector` to the live operation
  stream at seeded rates (including burst storms), so the healer is
  continuously exercised in production shape.
* :class:`~repro.resilience.advisor.AdvisorLoop` — the paper's §7
  self-tuning loop as a background task: re-costs each managed ASR's
  (extension, decomposition) against the *measured* op mix via the
  :class:`~repro.asr.adaptive.AdaptiveDesigner` and re-materializes it
  online — behind hysteresis, cooldown, and dry-run gates — publishing
  ``advisor.sweeps`` / ``advisor.retunes`` / ``advisor.rejected`` and
  the ``advisor.predicted_gain`` gauge.
* :class:`~repro.resilience.breaker.CircuitBreaker` /
  :class:`~repro.resilience.breaker.BreakerBoard` — a per-ASR breaker
  that opens after repeated faults and routes queries to the degraded
  GOM-traversal fallback (Litwin's stored-vs-inherited duality: the
  answer stays derivable from the base objects) until a half-open probe
  proves the stored relation stable again.

Import discipline: :mod:`repro.asr.manager` imports
:mod:`repro.resilience.policy`, so nothing in this package may import
from :mod:`repro.asr` at module level — the healer and the board treat
managers and ASRs duck-typed (``manager.quarantined``,
``asr.state.value``).
"""

from repro.resilience.advisor import AdvisorLoop
from repro.resilience.breaker import BreakerBoard, CircuitBreaker
from repro.resilience.chaos import ChaosConfig, ChaosController
from repro.resilience.healer import HealerLoop
from repro.resilience.policy import RecoveryPolicy

__all__ = [
    "AdvisorLoop",
    "BreakerBoard",
    "ChaosConfig",
    "ChaosController",
    "CircuitBreaker",
    "HealerLoop",
    "RecoveryPolicy",
]
